#include "fft/dct_plan.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/parallel.h"
#include "fft/fft.h"

namespace puffer {

namespace {
constexpr std::int64_t kLineGrain = 8;
constexpr int kMaxLineChunks = 64;
constexpr std::size_t kTile = 32;  // transpose tile (doubles)

// Blocked out-of-place transpose: dst[m*rows + n] = src[n*cols + m].
void transpose_blocked(const double* src, double* dst, std::size_t rows,
                       std::size_t cols) {
  for (std::size_t n0 = 0; n0 < rows; n0 += kTile) {
    const std::size_t n1 = std::min(rows, n0 + kTile);
    for (std::size_t m0 = 0; m0 < cols; m0 += kTile) {
      const std::size_t m1 = std::min(cols, m0 + kTile);
      for (std::size_t n = n0; n < n1; ++n) {
        for (std::size_t m = m0; m < m1; ++m) {
          dst[m * rows + n] = src[n * cols + m];
        }
      }
    }
  }
}

}  // namespace

DctPlan2D::LinePlan DctPlan2D::make_line_plan(std::size_t n) {
  if (!is_pow2(n)) {
    throw std::invalid_argument("DctPlan2D: sizes must be powers of 2");
  }
  LinePlan p;
  p.n = n;

  // Bit-reversal permutation (the fixed point of fft()'s in-place swap
  // pass: swap a[i], a[bitrev[i]] for i < bitrev[i]).
  p.bitrev.resize(n);
  std::size_t j = 0;
  p.bitrev[0] = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    p.bitrev[i] = static_cast<std::uint32_t>(j);
  }

  // Per-stage twiddles, concatenated in stage order. Built with the same
  // w *= wlen recurrence fft() runs per block, so butterfly inputs -- and
  // therefore outputs -- are bit-identical to the free functions.
  for (int dir = 0; dir < 2; ++dir) {
    const bool invert = dir == 1;
    std::vector<cd>& tw = invert ? p.tw_inv : p.tw_fwd;
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const double ang = 2.0 * std::numbers::pi / static_cast<double>(len) *
                         (invert ? 1.0 : -1.0);
      const cd wlen(std::cos(ang), std::sin(ang));
      cd w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        tw.push_back(w);
        w *= wlen;
      }
    }
  }

  p.rot_fwd.resize(n);
  p.rot_inv.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = std::numbers::pi * static_cast<double>(k) /
                       (2.0 * static_cast<double>(n));
    p.rot_fwd[k] = cd(std::cos(-ang), std::sin(-ang));
    p.rot_inv[k] = cd(std::cos(ang), std::sin(ang));
  }
  return p;
}

DctPlan2D::DctPlan2D(std::size_t nx, std::size_t ny)
    : nx_(nx), ny_(ny), px_(make_line_plan(nx)), py_(make_line_plan(ny)) {
  const std::int64_t longest =
      static_cast<std::int64_t>(std::max(nx_, ny_));
  scratch_.resize(static_cast<std::size_t>(
      par::chunk_count(longest, kLineGrain, kMaxLineChunks)));
  const std::size_t line = std::max(nx_, ny_);
  for (Scratch& s : scratch_) {
    s.v.resize(line);
    s.line.resize(line);
  }
  tmp_.resize(nx_ * ny_);
  tr_.resize(nx_ * ny_);
  tr2_.resize(nx_ * ny_);
}

void DctPlan2D::fft_line(cd* a, const LinePlan& p, bool invert) {
  const std::size_t n = p.n;
  if (n == 1) return;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = p.bitrev[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  const cd* tw = (invert ? p.tw_inv : p.tw_fwd).data();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        // Manual complex butterfly: same ac-bd / ad+bc products as the
        // std::complex operator* fast path, minus its per-multiply NaN
        // checks (bit-identical for the finite values seen here).
        const double wr = tw[k].real(), wi = tw[k].imag();
        const double br = a[i + k + half].real();
        const double bi = a[i + k + half].imag();
        const double vr = br * wr - bi * wi;
        const double vi = br * wi + bi * wr;
        const double ur = a[i + k].real(), ui = a[i + k].imag();
        a[i + k] = cd(ur + vr, ui + vi);
        a[i + k + half] = cd(ur - vr, ui - vi);
      }
    }
    tw += half;
  }
  if (invert) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) a[i] *= inv_n;
  }
}

void DctPlan2D::dct2_line(const double* x, double* out, const LinePlan& p,
                          Scratch& s) {
  const std::size_t n = p.n;
  cd* v = s.v.data();
  for (std::size_t i = 0; i < n / 2; ++i) {
    v[i] = x[2 * i];
    v[n - 1 - i] = x[2 * i + 1];
  }
  if (n == 1) v[0] = x[0];
  fft_line(v, p, false);
  for (std::size_t k = 0; k < n; ++k) {
    // Real part of v[k] * rot_fwd[k], same products as operator*.
    out[k] = v[k].real() * p.rot_fwd[k].real() -
             v[k].imag() * p.rot_fwd[k].imag();
  }
}

void DctPlan2D::dct3_line(const double* X, double* out, const LinePlan& p,
                          Scratch& s) {
  // dct3_raw(X) = (N/2) * idct(X'') with X''[0] = 2*X[0]; see dct.h.
  const std::size_t n = p.n;
  const double scale = static_cast<double>(n) / 2.0;
  if (n == 1) {
    out[0] = X[0] * 2.0 * scale;
    return;
  }
  cd* v = s.v.data();
  v[0] = cd(X[0] * 2.0, 0.0);
  for (std::size_t k = 1; k < n; ++k) {
    // rot_inv[k] * (X[k] - i X[n-k]), expanded like the operator* fast
    // path (first operand's components are the a/b of ac-bd / ad+bc).
    const double rr = p.rot_inv[k].real(), ri = p.rot_inv[k].imag();
    const double c = X[k], d = -X[n - k];
    v[k] = cd(rr * c - ri * d, rr * d + ri * c);
  }
  fft_line(v, p, true);
  for (std::size_t i = 0; i < n / 2; ++i) {
    out[2 * i] = v[i].real() * scale;
    out[2 * i + 1] = v[n - 1 - i].real() * scale;
  }
}

void DctPlan2D::idxst_line(const double* X, double* out, const LinePlan& p,
                           Scratch& s) {
  // Flipped cosine series with alternating signs; see dct.h.
  const std::size_t n = p.n;
  double* flipped = s.line.data();
  flipped[0] = 0.0;
  for (std::size_t k = 1; k < n; ++k) flipped[k] = X[n - k];
  dct3_line(flipped, out, p, s);
  for (std::size_t m = 1; m < n; m += 2) out[m] = -out[m];
}

void DctPlan2D::run_lines(const double* in, double* out, std::size_t n_lines,
                          const LinePlan& p, LineOp op) const {
  par::parallel_for(
      0, static_cast<std::int64_t>(n_lines), kLineGrain,
      [&](std::int64_t b, std::int64_t e, int c) {
        Scratch& s = scratch_[static_cast<std::size_t>(c)];
        for (std::int64_t li = b; li < e; ++li) {
          const double* src = in + static_cast<std::size_t>(li) * p.n;
          double* dst = out + static_cast<std::size_t>(li) * p.n;
          switch (op) {
            case LineOp::kDct2:
              dct2_line(src, dst, p, s);
              break;
            case LineOp::kDct3:
              dct3_line(src, dst, p, s);
              break;
            case LineOp::kIdxst:
              idxst_line(src, dst, p, s);
              break;
          }
        }
      },
      kMaxLineChunks);
}

void DctPlan2D::apply(const std::vector<double>& in, std::vector<double>& out,
                      LineOp op_x, LineOp op_y) const {
  if (in.size() != nx_ * ny_) {
    throw std::invalid_argument("2d transform: size mismatch");
  }
  // Row pass (contiguous lines of length nx), then transpose so the
  // column pass also runs on contiguous lines, then transpose back.
  run_lines(in.data(), tmp_.data(), ny_, px_, op_x);
  transpose_blocked(tmp_.data(), tr_.data(), ny_, nx_);
  run_lines(tr_.data(), tr2_.data(), nx_, py_, op_y);
  out.resize(nx_ * ny_);
  transpose_blocked(tr2_.data(), out.data(), nx_, ny_);
}

void DctPlan2D::dct2_2d(const std::vector<double>& in,
                        std::vector<double>& out) const {
  apply(in, out, LineOp::kDct2, LineOp::kDct2);
}

void DctPlan2D::dct3_raw_2d(const std::vector<double>& in,
                            std::vector<double>& out) const {
  apply(in, out, LineOp::kDct3, LineOp::kDct3);
}

void DctPlan2D::idxst_dct3_2d(const std::vector<double>& in,
                              std::vector<double>& out) const {
  apply(in, out, LineOp::kIdxst, LineOp::kDct3);
}

void DctPlan2D::dct3_idxst_2d(const std::vector<double>& in,
                              std::vector<double>& out) const {
  apply(in, out, LineOp::kDct3, LineOp::kIdxst);
}

}  // namespace puffer
