// FFT-backed discrete cosine/sine transforms on the half-sample grid.
//
// Conventions (N = input size, a power of two):
//
//   dct2(x)[k]      = sum_n x[n] * cos(pi*k*(2n+1)/(2N))           (DCT-II)
//   dct3_raw(X)[m]  = sum_k X[k] * cos(pi*k*(2m+1)/(2N))           (DCT-III,
//                     no c_k weighting; the caller folds weights into X)
//   idxst_raw(X)[m] = sum_{k>=1} X[k] * sin(pi*k*(2m+1)/(2N))
//
// These are exactly the evaluations needed by the electrostatic solver:
// the density spectrum is a 2D dct2; the potential and both field
// components are 2D combinations of dct3_raw / idxst_raw with the spectral
// weights folded into the coefficient array (see gp/electrostatics.h).
//
// Inversion identity: if X = dct2(x) then
//   x[n] = (2/N) * dct3_raw(X')[n]  with X'[0] = X[0]/2, X'[k] = X[k].
//
// The 2D variants apply the 1D transform along x (rows of the row-major
// array, index m fastest) and then along y.
#pragma once

#include <cstddef>
#include <vector>

namespace puffer {

std::vector<double> dct2(const std::vector<double>& x);
std::vector<double> dct3_raw(const std::vector<double>& X);
std::vector<double> idxst_raw(const std::vector<double>& X);

// Row-major 2D grids: value(m, n) = data[n * nx + m]; nx, ny powers of two.
// `dct2_2d` transforms both axes with DCT-II. For the inverse-style
// evaluations, the x-axis transform is chosen per function name and the
// y-axis always uses dct3_raw.
std::vector<double> dct2_2d(const std::vector<double>& data, std::size_t nx,
                            std::size_t ny);
std::vector<double> dct3_raw_2d(const std::vector<double>& data, std::size_t nx,
                                std::size_t ny);
// idxst along x, dct3_raw along y (x-field evaluation).
std::vector<double> idxst_dct3_2d(const std::vector<double>& data,
                                  std::size_t nx, std::size_t ny);
// dct3_raw along x, idxst along y (y-field evaluation).
std::vector<double> dct3_idxst_2d(const std::vector<double>& data,
                                  std::size_t nx, std::size_t ny);

}  // namespace puffer
