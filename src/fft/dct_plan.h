// Preplanned, allocation-free 2D cosine/sine transforms.
//
// The free functions in dct.h recompute twiddle factors and allocate
// several vectors per line transform; fine for one-off use, but the
// electrostatic solver runs three 2D inverse evaluations plus a forward
// spectrum per Nesterov gradient -- thousands of times per flow. A
// DctPlan2D hoists everything reusable out of the loop:
//
//   * bit-reversal permutations and per-stage FFT twiddle tables (built
//     with the same recurrence the free fft() uses, so every transform
//     is bit-identical to its dct.h counterpart);
//   * the DCT-II / DCT-III boundary rotations exp(+-i*pi*k/(2N));
//   * per-chunk line scratch, the row-major intermediate, and the tiled
//     transpose buffers -- so a transform performs no heap allocation
//     after the first call.
//
// The column pass runs on a blocked transpose of the row-pass output
// (contiguous lines instead of stride-nx gathers), then transposes back.
// Both passes fan out per line with the deterministic chunk
// decomposition; chunk c writes only its own lines and scratch, so
// results are worker-count independent.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace puffer {

class DctPlan2D {
 public:
  // nx, ny: grid sizes, powers of two. Throws std::invalid_argument
  // otherwise (same contract as the free transforms).
  DctPlan2D(std::size_t nx, std::size_t ny);

  // Each transform reads `in` (size nx*ny, row-major, x fastest) and
  // writes `out` (resized to nx*ny). `in` and `out` may alias.
  // Semantics match the same-named free functions in dct.h bit-for-bit.
  void dct2_2d(const std::vector<double>& in, std::vector<double>& out) const;
  void dct3_raw_2d(const std::vector<double>& in,
                   std::vector<double>& out) const;
  void idxst_dct3_2d(const std::vector<double>& in,
                     std::vector<double>& out) const;
  void dct3_idxst_2d(const std::vector<double>& in,
                     std::vector<double>& out) const;

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }

 private:
  using cd = std::complex<double>;

  // 1D machinery for one line length.
  struct LinePlan {
    std::size_t n = 0;
    std::vector<std::uint32_t> bitrev;
    std::vector<cd> tw_fwd, tw_inv;  // per-stage twiddles, concatenated
    std::vector<cd> rot_fwd;         // exp(-i*pi*k/(2N)) (DCT-II output)
    std::vector<cd> rot_inv;         // exp(+i*pi*k/(2N)) (IDCT input)
  };

  // Per-chunk line scratch (complex workspace + a staging line).
  struct Scratch {
    std::vector<cd> v;
    std::vector<double> line;
  };

  enum class LineOp { kDct2, kDct3, kIdxst };

  static LinePlan make_line_plan(std::size_t n);
  static void fft_line(cd* a, const LinePlan& p, bool invert);
  static void dct2_line(const double* x, double* out, const LinePlan& p,
                        Scratch& s);
  static void dct3_line(const double* X, double* out, const LinePlan& p,
                        Scratch& s);
  static void idxst_line(const double* X, double* out, const LinePlan& p,
                         Scratch& s);

  // Applies `op_x` along x then `op_y` along y (via transpose).
  void apply(const std::vector<double>& in, std::vector<double>& out,
             LineOp op_x, LineOp op_y) const;
  void run_lines(const double* in, double* out, std::size_t n_lines,
                 const LinePlan& p, LineOp op) const;

  std::size_t nx_, ny_;
  LinePlan px_, py_;
  mutable std::vector<Scratch> scratch_;  // indexed by chunk id
  mutable std::vector<double> tmp_, tr_, tr2_;
};

}  // namespace puffer
