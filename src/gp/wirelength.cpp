#include "gp/wirelength.h"

#include <cmath>
#include <limits>

#include "common/parallel.h"

namespace puffer {

namespace {
// Nets per chunk / chunk cap for the parallel net fan-out. The chunk
// decomposition (not the worker count) fixes the floating-point fold
// order, so these constants are part of the numeric contract.
constexpr std::int64_t kNetGrain = 128;
constexpr int kMaxNetChunks = 16;
}  // namespace

WaWirelength::WaWirelength(const Design& design) {
  ordinal_.assign(design.cells.size(), -1);
  for (CellId c = 0; c < static_cast<CellId>(design.cells.size()); ++c) {
    if (design.cells[static_cast<std::size_t>(c)].movable()) {
      ordinal_[static_cast<std::size_t>(c)] =
          static_cast<std::int32_t>(movable_.size());
      movable_.push_back(c);
    }
  }
  pin_count_.assign(movable_.size(), 0.0);

  nets_.reserve(design.nets.size());
  for (const Net& net : design.nets) {
    if (net.pins.size() < 2) continue;
    CompiledNet cn;
    cn.weight = net.weight;
    cn.pins.reserve(net.pins.size());
    for (PinId pid : net.pins) {
      const Pin& pin = design.pins[static_cast<std::size_t>(pid)];
      const Cell& cell = design.cells[static_cast<std::size_t>(pin.cell)];
      NetPin np;
      np.ordinal = ordinal_[static_cast<std::size_t>(pin.cell)];
      if (np.ordinal >= 0) {
        // Offset from cell center: pins ride with the center coordinate.
        np.ox = pin.dx - cell.width * 0.5;
        np.oy = pin.dy - cell.height * 0.5;
        np.fx = np.fy = 0.0;
        pin_count_[static_cast<std::size_t>(np.ordinal)] += 1.0;
      } else {
        np.ox = np.oy = 0.0;
        np.fx = cell.x + pin.dx;
        np.fy = cell.y + pin.dy;
      }
      cn.pins.push_back(np);
    }
    nets_.push_back(std::move(cn));
  }
}

namespace {

// One-dimensional WA term and gradient accumulation for a single net.
// Returns the net's smoothed extent in this dimension; adds the weighted
// gradient to `grad` for movable pins.
//
// The per-pin derivative of the max-side term
//   S+ = sum x e^{x/g} / sum e^{x/g}
// is  dS+/dx_k = e^{x_k/g} * ( sum_e * (1 + x_k/g) - sum_xe/g ) / sum_e^2.
// The min side is the same with g -> -g.
double wa_dimension(const std::vector<double>& coords,
                    const std::vector<std::int32_t>& ordinals,
                    const std::vector<double>& pos_all, double gamma,
                    double weight, std::vector<double>& grad) {
  const std::size_t n = coords.size();
  double cmax = -std::numeric_limits<double>::max();
  double cmin = std::numeric_limits<double>::max();
  for (double c : coords) {
    cmax = std::max(cmax, c);
    cmin = std::min(cmin, c);
  }
  (void)pos_all;
  double se_p = 0.0, sxe_p = 0.0;  // max side, exp shifted by cmax
  double se_m = 0.0, sxe_m = 0.0;  // min side, exp shifted by cmin
  for (double c : coords) {
    const double ep = std::exp((c - cmax) / gamma);
    const double em = std::exp((cmin - c) / gamma);
    se_p += ep;
    sxe_p += c * ep;
    se_m += em;
    sxe_m += c * em;
  }
  const double s_plus = sxe_p / se_p;
  const double s_minus = sxe_m / se_m;

  for (std::size_t k = 0; k < n; ++k) {
    const std::int32_t ord = ordinals[k];
    if (ord < 0) continue;
    const double c = coords[k];
    const double ep = std::exp((c - cmax) / gamma);
    const double em = std::exp((cmin - c) / gamma);
    const double d_plus =
        ep * (se_p * (1.0 + c / gamma) - sxe_p / gamma) / (se_p * se_p);
    // Min side: replace gamma by -gamma.
    const double d_minus =
        em * (se_m * (1.0 - c / gamma) + sxe_m / gamma) / (se_m * se_m);
    grad[static_cast<std::size_t>(ord)] += weight * (d_plus - d_minus);
  }
  return s_plus - s_minus;
}

}  // namespace

double WaWirelength::evaluate(const std::vector<double>& xc,
                              const std::vector<double>& yc, double gamma,
                              std::vector<double>& grad_x,
                              std::vector<double>& grad_y) const {
  grad_x.assign(movable_.size(), 0.0);
  grad_y.assign(movable_.size(), 0.0);
  const std::int64_t n_nets = static_cast<std::int64_t>(nets_.size());
  if (n_nets == 0) return 0.0;

  // Per-chunk net walk; accumulates into the given gradient buffers.
  const auto eval_chunk = [&](std::int64_t nb, std::int64_t ne,
                              std::vector<double>& gx,
                              std::vector<double>& gy) {
    double total = 0.0;
    std::vector<double> px, py;
    std::vector<std::int32_t> ords;
    for (std::int64_t ni = nb; ni < ne; ++ni) {
      const CompiledNet& net = nets_[static_cast<std::size_t>(ni)];
      const std::size_t n = net.pins.size();
      px.resize(n);
      py.resize(n);
      ords.resize(n);
      for (std::size_t k = 0; k < n; ++k) {
        const NetPin& p = net.pins[k];
        ords[k] = p.ordinal;
        if (p.ordinal >= 0) {
          px[k] = xc[static_cast<std::size_t>(p.ordinal)] + p.ox;
          py[k] = yc[static_cast<std::size_t>(p.ordinal)] + p.oy;
        } else {
          px[k] = p.fx;
          py[k] = p.fy;
        }
      }
      total += net.weight * wa_dimension(px, ords, xc, gamma, net.weight, gx);
      total += net.weight * wa_dimension(py, ords, yc, gamma, net.weight, gy);
    }
    return total;
  };

  const int nchunks = par::chunk_count(n_nets, kNetGrain, kMaxNetChunks);
  if (nchunks == 1) {
    return eval_chunk(0, n_nets, grad_x, grad_y);
  }

  scratch_gx_.resize(static_cast<std::size_t>(nchunks));
  scratch_gy_.resize(static_cast<std::size_t>(nchunks));
  chunk_total_.assign(static_cast<std::size_t>(nchunks), 0.0);
  par::parallel_for(
      0, n_nets, kNetGrain,
      [&](std::int64_t nb, std::int64_t ne, int c) {
        auto& gx = scratch_gx_[static_cast<std::size_t>(c)];
        auto& gy = scratch_gy_[static_cast<std::size_t>(c)];
        gx.assign(movable_.size(), 0.0);
        gy.assign(movable_.size(), 0.0);
        chunk_total_[static_cast<std::size_t>(c)] = eval_chunk(nb, ne, gx, gy);
      },
      kMaxNetChunks);

  // Ordered merge: cell i's gradient is the chunk partials summed in
  // chunk order, regardless of which workers produced them.
  par::parallel_for(
      0, static_cast<std::int64_t>(movable_.size()), 4096,
      [&](std::int64_t b, std::int64_t e, int) {
        for (std::int64_t i = b; i < e; ++i) {
          const std::size_t si = static_cast<std::size_t>(i);
          double sx = 0.0, sy = 0.0;
          for (int c = 0; c < nchunks; ++c) {
            sx += scratch_gx_[static_cast<std::size_t>(c)][si];
            sy += scratch_gy_[static_cast<std::size_t>(c)][si];
          }
          grad_x[si] = sx;
          grad_y[si] = sy;
        }
      });

  double total = 0.0;
  for (double t : chunk_total_) total += t;
  return total;
}

double WaWirelength::hpwl(const std::vector<double>& xc,
                          const std::vector<double>& yc) const {
  const std::int64_t n_nets = static_cast<std::int64_t>(nets_.size());
  return par::parallel_reduce(
      0, n_nets, kNetGrain, 0.0,
      [&](std::int64_t nb, std::int64_t ne) {
        return hpwl_chunk(xc, yc, nb, ne);
      },
      kMaxNetChunks);
}

double WaWirelength::hpwl_chunk(const std::vector<double>& xc,
                                const std::vector<double>& yc,
                                std::int64_t nb, std::int64_t ne) const {
  double total = 0.0;
  for (std::int64_t ni = nb; ni < ne; ++ni) {
    const CompiledNet& net = nets_[static_cast<std::size_t>(ni)];
    double xlo = std::numeric_limits<double>::max(), xhi = -xlo;
    double ylo = xlo, yhi = xhi;
    for (const NetPin& p : net.pins) {
      double x, y;
      if (p.ordinal >= 0) {
        x = xc[static_cast<std::size_t>(p.ordinal)] + p.ox;
        y = yc[static_cast<std::size_t>(p.ordinal)] + p.oy;
      } else {
        x = p.fx;
        y = p.fy;
      }
      xlo = std::min(xlo, x);
      xhi = std::max(xhi, x);
      ylo = std::min(ylo, y);
      yhi = std::max(yhi, y);
    }
    total += net.weight * ((xhi - xlo) + (yhi - ylo));
  }
  return total;
}

}  // namespace puffer
