#include "gp/wirelength.h"

#include <cmath>
#include <limits>

#include "common/parallel.h"

namespace puffer {

WaWirelength::WaWirelength(const Design& design) {
  auto soa = std::make_shared<GpSoA>();
  soa->build(design);
  soa_ = std::move(soa);
}

WaWirelength::WaWirelength(std::shared_ptr<const GpSoA> soa)
    : soa_(std::move(soa)) {}

double WaWirelength::evaluate(const std::vector<double>& xc,
                              const std::vector<double>& yc, double gamma,
                              std::vector<double>& grad_x,
                              std::vector<double>& grad_y) const {
  return legacy_ ? evaluate_legacy(xc, yc, gamma, grad_x, grad_y)
                 : evaluate_soa(xc, yc, gamma, grad_x, grad_y);
}

// --- SoA two-pass kernel ------------------------------------------------

double WaWirelength::evaluate_soa(const std::vector<double>& xc,
                                  const std::vector<double>& yc, double gamma,
                                  std::vector<double>& grad_x,
                                  std::vector<double>& grad_y) const {
  const GpSoA& s = *soa_;
  const std::size_t n_mov = s.num_movable();
  grad_x.assign(n_mov, 0.0);
  grad_y.assign(n_mov, 0.0);
  const std::int64_t n_nets = static_cast<std::int64_t>(s.num_nets());
  if (n_nets == 0) {
    hpwl_last_ = 0.0;
    return 0.0;
  }

  const std::size_t n_slots = s.num_slots();
  dw_.resize(2 * n_slots);

  const int nchunks = s.num_net_chunks();
  chunk_total_.assign(static_cast<std::size_t>(nchunks), 0.0);
  chunk_hpwl_.assign(static_cast<std::size_t>(nchunks), 0.0);
  net_scratch_.resize(static_cast<std::size_t>(nchunks));

  const double* xp = xc.data();
  const double* yp = yc.data();
  const std::int32_t* ords = s.pin_ord.data();
  const double* oxs = s.pin_ox.data();
  const double* oys = s.pin_oy.data();
  const std::size_t max_deg = static_cast<std::size_t>(s.max_net_degree());

  // Pass A: per net, gather both dimensions' slot coordinates into
  // L1-resident per-net buffers, compute the shifted exponentials and
  // accumulator sums, and emit one finished gradient term per movable
  // slot and dimension (x/y interleaved in dw_). The per-dimension
  // accumulation sequences are exactly the scalar kernel's (independent
  // accumulators, same slot order), so fusing the x and y walks into one
  // loop changes no bits. Chunk c owns a contiguous net (and therefore
  // slot) range, so the dw_ writes are disjoint; the wirelength total
  // folds in chunk order. The per-net min/max already computed here also
  // yields the exact HPWL of hpwl() at these positions, accumulated into
  // chunk_hpwl_ with the same per-chunk/ascending-fold association as
  // the parallel_reduce in hpwl().
  par::parallel_for(
      0, n_nets, kNetGrain,
      [&](std::int64_t nb, std::int64_t ne, int chunk) {
        NetScratch& ns = net_scratch_[static_cast<std::size_t>(chunk)];
        ns.cx.resize(max_deg);
        ns.cy.resize(max_deg);
        ns.epx.resize(max_deg);
        ns.emx.resize(max_deg);
        ns.epy.resize(max_deg);
        ns.emy.resize(max_deg);
        double* cbx = ns.cx.data();
        double* cby = ns.cy.data();
        double* epbx = ns.epx.data();
        double* embx = ns.emx.data();
        double* epby = ns.epy.data();
        double* emby = ns.emy.data();
        double* dw = dw_.data();
        double total = 0.0;
        double hp = 0.0;
        for (std::int64_t ni = nb; ni < ne; ++ni) {
          const std::size_t un = static_cast<std::size_t>(ni);
          const std::int64_t s0 = s.net_start[un];
          const std::int64_t s1 = s.net_start[un + 1];
          const std::size_t deg = static_cast<std::size_t>(s1 - s0);
          const double w = s.net_weight[un];

          double cmax_x = -std::numeric_limits<double>::max();
          double cmin_x = std::numeric_limits<double>::max();
          double cmax_y = cmax_x, cmin_y = cmin_x;
          for (std::size_t k = 0; k < deg; ++k) {
            const std::size_t us = static_cast<std::size_t>(s0) + k;
            const std::int32_t ord = ords[us];
            const double cvx = ord >= 0 ? xp[ord] + oxs[us] : oxs[us];
            const double cvy = ord >= 0 ? yp[ord] + oys[us] : oys[us];
            cbx[k] = cvx;
            cby[k] = cvy;
            cmax_x = std::max(cmax_x, cvx);
            cmin_x = std::min(cmin_x, cvx);
            cmax_y = std::max(cmax_y, cvy);
            cmin_y = std::min(cmin_y, cvy);
          }
          double se_px = 0.0, sxe_px = 0.0, se_mx = 0.0, sxe_mx = 0.0;
          double se_py = 0.0, sxe_py = 0.0, se_my = 0.0, sxe_my = 0.0;
          for (std::size_t k = 0; k < deg; ++k) {
            const double cvx = cbx[k];
            const double epx = std::exp((cvx - cmax_x) / gamma);
            const double emx = std::exp((cmin_x - cvx) / gamma);
            epbx[k] = epx;
            embx[k] = emx;
            se_px += epx;
            sxe_px += cvx * epx;
            se_mx += emx;
            sxe_mx += cvx * emx;
            const double cvy = cby[k];
            const double epy = std::exp((cvy - cmax_y) / gamma);
            const double emy = std::exp((cmin_y - cvy) / gamma);
            epby[k] = epy;
            emby[k] = emy;
            se_py += epy;
            sxe_py += cvy * epy;
            se_my += emy;
            sxe_my += cvy * emy;
          }
          total += w * (sxe_px / se_px - sxe_mx / se_mx);
          total += w * (sxe_py / se_py - sxe_my / se_my);
          hp += w * ((cmax_x - cmin_x) + (cmax_y - cmin_y));
          for (std::size_t k = 0; k < deg; ++k) {
            const std::size_t us = static_cast<std::size_t>(s0) + k;
            if (ords[us] < 0) continue;  // never read by pass B
            const double cvx = cbx[k];
            const double dpx =
                epbx[k] * (se_px * (1.0 + cvx / gamma) - sxe_px / gamma) /
                (se_px * se_px);
            const double dmx =
                embx[k] * (se_mx * (1.0 - cvx / gamma) + sxe_mx / gamma) /
                (se_mx * se_mx);
            dw[2 * us] = w * (dpx - dmx);
            const double cvy = cby[k];
            const double dpy =
                epby[k] * (se_py * (1.0 + cvy / gamma) - sxe_py / gamma) /
                (se_py * se_py);
            const double dmy =
                emby[k] * (se_my * (1.0 - cvy / gamma) + sxe_my / gamma) /
                (se_my * se_my);
            dw[2 * us + 1] = w * (dpy - dmy);
          }
        }
        chunk_total_[static_cast<std::size_t>(chunk)] = total;
        chunk_hpwl_[static_cast<std::size_t>(chunk)] = hp;
      },
      kMaxNetChunks);

  // Pass B: per-cell gather of the stored terms through the transposed
  // CSR. A cell's slots ascend, and slots ascend net-major, so its terms
  // arrive already grouped by net chunk; folding one partial per chunk
  // (empty chunks contribute +0.0) in chunk order reproduces exactly the
  // association of the legacy per-chunk-buffer merge, bit for bit. Runs
  // of k >= 1 empty chunks collapse to a single `+= 0.0`: the first add
  // normalizes a possible -0.0 partial sum to +0.0 and every further
  // zero add is then a bitwise no-op. No shared writes: cell i is owned
  // by exactly one chunk.
  const std::int64_t* cstart = s.cell_start.data();
  const std::int64_t* cslots = s.cell_slots.data();
  const std::int32_t* schunk = s.slot_chunk.data();
  const double* dw = dw_.data();
  par::parallel_for(
      0, static_cast<std::int64_t>(n_mov), 4096,
      [&](std::int64_t b, std::int64_t e, int) {
        for (std::int64_t i = b; i < e; ++i) {
          const std::size_t ui = static_cast<std::size_t>(i);
          const std::int64_t k1 = cstart[ui + 1];
          double gx_sum = 0.0, gy_sum = 0.0;
          double part_x = 0.0, part_y = 0.0;
          int cur = 0;
          for (std::int64_t k = cstart[ui]; k < k1; ++k) {
            const std::size_t us = static_cast<std::size_t>(cslots[k]);
            const int c = schunk[us];
            if (cur < c) {
              gx_sum += part_x;
              gy_sum += part_y;
              if (c - cur > 1) {
                gx_sum += 0.0;
                gy_sum += 0.0;
              }
              part_x = 0.0;
              part_y = 0.0;
              cur = c;
            }
            part_x += dw[2 * us];
            part_y += dw[2 * us + 1];
          }
          if (cur < nchunks) {
            gx_sum += part_x;
            gy_sum += part_y;
            if (nchunks - cur > 1) {
              gx_sum += 0.0;
              gy_sum += 0.0;
            }
          }
          grad_x[ui] = gx_sum;
          grad_y[ui] = gy_sum;
        }
      });

  double total = 0.0;
  for (double t : chunk_total_) total += t;
  // Same init + ascending-partial fold as the parallel_reduce in hpwl().
  double hp = 0.0;
  for (double t : chunk_hpwl_) hp += t;
  hpwl_last_ = hp;
  return total;
}

// --- legacy scalar kernel (bit-identity oracle, bench baseline) ---------

namespace {

// One-dimensional WA term and gradient accumulation for a single net.
// Returns the net's smoothed extent in this dimension; adds the weighted
// gradient to `grad` for movable pins.
//
// The per-pin derivative of the max-side term
//   S+ = sum x e^{x/g} / sum e^{x/g}
// is  dS+/dx_k = e^{x_k/g} * ( sum_e * (1 + x_k/g) - sum_xe/g ) / sum_e^2.
// The min side is the same with g -> -g.
double wa_dimension(const std::vector<double>& coords,
                    const std::vector<std::int32_t>& ordinals, double gamma,
                    double weight, std::vector<double>& grad) {
  const std::size_t n = coords.size();
  double cmax = -std::numeric_limits<double>::max();
  double cmin = std::numeric_limits<double>::max();
  for (double c : coords) {
    cmax = std::max(cmax, c);
    cmin = std::min(cmin, c);
  }
  double se_p = 0.0, sxe_p = 0.0;  // max side, exp shifted by cmax
  double se_m = 0.0, sxe_m = 0.0;  // min side, exp shifted by cmin
  for (double c : coords) {
    const double ep = std::exp((c - cmax) / gamma);
    const double em = std::exp((cmin - c) / gamma);
    se_p += ep;
    sxe_p += c * ep;
    se_m += em;
    sxe_m += c * em;
  }
  const double s_plus = sxe_p / se_p;
  const double s_minus = sxe_m / se_m;

  for (std::size_t k = 0; k < n; ++k) {
    const std::int32_t ord = ordinals[k];
    if (ord < 0) continue;
    const double c = coords[k];
    const double ep = std::exp((c - cmax) / gamma);
    const double em = std::exp((cmin - c) / gamma);
    const double d_plus =
        ep * (se_p * (1.0 + c / gamma) - sxe_p / gamma) / (se_p * se_p);
    // Min side: replace gamma by -gamma.
    const double d_minus =
        em * (se_m * (1.0 - c / gamma) + sxe_m / gamma) / (se_m * se_m);
    grad[static_cast<std::size_t>(ord)] += weight * (d_plus - d_minus);
  }
  return s_plus - s_minus;
}

}  // namespace

void WaWirelength::build_legacy_nets() const {
  const GpSoA& s = *soa_;
  const std::size_t n_nets = s.num_nets();
  legacy_nets_.resize(n_nets);
  for (std::size_t un = 0; un < n_nets; ++un) {
    LegacyNet& net = legacy_nets_[un];
    net.weight = s.net_weight[un];
    const std::int64_t s0 = s.net_start[un];
    const std::int64_t s1 = s.net_start[un + 1];
    net.pins.reserve(static_cast<std::size_t>(s1 - s0));
    for (std::int64_t sl = s0; sl < s1; ++sl) {
      const std::size_t us = static_cast<std::size_t>(sl);
      LegacyNetPin p;
      p.ordinal = s.pin_ord[us];
      if (p.ordinal >= 0) {
        p.ox = s.pin_ox[us];
        p.oy = s.pin_oy[us];
        p.fx = p.fy = 0.0;
      } else {
        p.ox = p.oy = 0.0;
        p.fx = s.pin_ox[us];
        p.fy = s.pin_oy[us];
      }
      net.pins.push_back(p);
    }
  }
}

double WaWirelength::evaluate_legacy(const std::vector<double>& xc,
                                     const std::vector<double>& yc,
                                     double gamma, std::vector<double>& grad_x,
                                     std::vector<double>& grad_y) const {
  const GpSoA& s = *soa_;
  const std::size_t n_mov = s.num_movable();
  grad_x.assign(n_mov, 0.0);
  grad_y.assign(n_mov, 0.0);
  const std::int64_t n_nets = static_cast<std::int64_t>(s.num_nets());
  if (n_nets == 0) return 0.0;
  if (legacy_nets_.size() != s.num_nets()) build_legacy_nets();

  // Per-chunk net walk over the AoS replica (the retired kernel's data
  // structure, pointer-chase and all); accumulates into the given
  // gradient buffers.
  const auto eval_chunk = [&](std::int64_t nb, std::int64_t ne,
                              std::vector<double>& gx,
                              std::vector<double>& gy) {
    double total = 0.0;
    std::vector<double> px, py;
    std::vector<std::int32_t> ords;
    for (std::int64_t ni = nb; ni < ne; ++ni) {
      const LegacyNet& net = legacy_nets_[static_cast<std::size_t>(ni)];
      const std::size_t n = net.pins.size();
      const double weight = net.weight;
      px.resize(n);
      py.resize(n);
      ords.resize(n);
      for (std::size_t k = 0; k < n; ++k) {
        const LegacyNetPin& p = net.pins[k];
        ords[k] = p.ordinal;
        if (p.ordinal >= 0) {
          px[k] = xc[static_cast<std::size_t>(p.ordinal)] + p.ox;
          py[k] = yc[static_cast<std::size_t>(p.ordinal)] + p.oy;
        } else {
          px[k] = p.fx;
          py[k] = p.fy;
        }
      }
      total += weight * wa_dimension(px, ords, gamma, weight, gx);
      total += weight * wa_dimension(py, ords, gamma, weight, gy);
    }
    return total;
  };

  const int nchunks = par::chunk_count(n_nets, kNetGrain, kMaxNetChunks);
  if (nchunks == 1) {
    return eval_chunk(0, n_nets, grad_x, grad_y);
  }

  scratch_gx_.resize(static_cast<std::size_t>(nchunks));
  scratch_gy_.resize(static_cast<std::size_t>(nchunks));
  chunk_total_.assign(static_cast<std::size_t>(nchunks), 0.0);
  par::parallel_for(
      0, n_nets, kNetGrain,
      [&](std::int64_t nb, std::int64_t ne, int c) {
        auto& gx = scratch_gx_[static_cast<std::size_t>(c)];
        auto& gy = scratch_gy_[static_cast<std::size_t>(c)];
        gx.assign(n_mov, 0.0);
        gy.assign(n_mov, 0.0);
        chunk_total_[static_cast<std::size_t>(c)] = eval_chunk(nb, ne, gx, gy);
      },
      kMaxNetChunks);

  // Ordered merge: cell i's gradient is the chunk partials summed in
  // chunk order, regardless of which workers produced them.
  par::parallel_for(
      0, static_cast<std::int64_t>(n_mov), 4096,
      [&](std::int64_t b, std::int64_t e, int) {
        for (std::int64_t i = b; i < e; ++i) {
          const std::size_t si = static_cast<std::size_t>(i);
          double sx = 0.0, sy = 0.0;
          for (int c = 0; c < nchunks; ++c) {
            sx += scratch_gx_[static_cast<std::size_t>(c)][si];
            sy += scratch_gy_[static_cast<std::size_t>(c)][si];
          }
          grad_x[si] = sx;
          grad_y[si] = sy;
        }
      });

  double total = 0.0;
  for (double t : chunk_total_) total += t;
  return total;
}

// --- HPWL ---------------------------------------------------------------

double WaWirelength::hpwl(const std::vector<double>& xc,
                          const std::vector<double>& yc) const {
  const std::int64_t n_nets = static_cast<std::int64_t>(soa_->num_nets());
  return par::parallel_reduce(
      0, n_nets, kNetGrain, 0.0,
      [&](std::int64_t nb, std::int64_t ne) {
        return hpwl_chunk(xc, yc, nb, ne);
      },
      kMaxNetChunks);
}

double WaWirelength::hpwl_chunk(const std::vector<double>& xc,
                                const std::vector<double>& yc,
                                std::int64_t nb, std::int64_t ne) const {
  const GpSoA& s = *soa_;
  const double* xp = xc.data();
  const double* yp = yc.data();
  double total = 0.0;
  for (std::int64_t ni = nb; ni < ne; ++ni) {
    const std::size_t un = static_cast<std::size_t>(ni);
    const std::int64_t s0 = s.net_start[un];
    const std::int64_t s1 = s.net_start[un + 1];
    double xlo = std::numeric_limits<double>::max(), xhi = -xlo;
    double ylo = xlo, yhi = xhi;
    for (std::int64_t sl = s0; sl < s1; ++sl) {
      const std::size_t us = static_cast<std::size_t>(sl);
      const std::int32_t ord = s.pin_ord[us];
      const double x = ord >= 0 ? xp[ord] + s.pin_ox[us] : s.pin_ox[us];
      const double y = ord >= 0 ? yp[ord] + s.pin_oy[us] : s.pin_oy[us];
      xlo = std::min(xlo, x);
      xhi = std::max(xhi, x);
      ylo = std::min(ylo, y);
      yhi = std::max(yhi, y);
    }
    total += s.net_weight[un] * ((xhi - xlo) + (yhi - ylo));
  }
  return total;
}

}  // namespace puffer
