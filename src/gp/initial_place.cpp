#include "gp/initial_place.h"

#include "common/rng.h"

namespace puffer {

void initial_place(Design& design, const InitialPlaceConfig& config) {
  Rng rng(config.seed);
  const Point c = design.die.center();
  const double jx = design.die.width() * config.jitter_frac;
  const double jy = design.die.height() * config.jitter_frac;

  if (!config.keep_existing) {
    for (Cell& cell : design.cells) {
      if (!cell.movable()) continue;
      cell.x = c.x - cell.width * 0.5 + rng.uniform(-jx, jx);
      cell.y = c.y - cell.height * 0.5 + rng.uniform(-jy, jy);
    }
  }

  // Gauss-Seidel star-model sweeps: move each cell to the mean position
  // of all pins on its nets (excluding its own pins). Fixed pins anchor
  // the system; without them this is a no-op around the center.
  for (int sweep = 0; sweep < config.sweeps; ++sweep) {
    for (CellId cid = 0; cid < static_cast<CellId>(design.cells.size()); ++cid) {
      Cell& cell = design.cells[static_cast<std::size_t>(cid)];
      if (!cell.movable()) continue;
      double sx = 0.0, sy = 0.0;
      int count = 0;
      for (PinId pid : cell.pins) {
        const Pin& pin = design.pins[static_cast<std::size_t>(pid)];
        const Net& net = design.nets[static_cast<std::size_t>(pin.net)];
        for (PinId other : net.pins) {
          if (other == pid) continue;
          const Point p = design.pin_position(other);
          sx += p.x;
          sy += p.y;
          ++count;
        }
      }
      if (count == 0) continue;
      cell.x = sx / count - cell.width * 0.5;
      cell.y = sy / count - cell.height * 0.5;
      design.clamp_to_die(cid);
    }
  }
}

}  // namespace puffer
