// Initial placement for the analytic engine.
//
// Strategy: start all movable cells at the die center (with a small
// deterministic jitter to break symmetry), then run a few Gauss-Seidel
// sweeps of the quadratic star model -- each cell moves to the average
// position of the pins it connects to -- which pulls cells toward their
// fixed anchors (terminals, macro pins) and gives the Nesterov engine a
// well-conditioned start.
#pragma once

#include <cstdint>

#include "netlist/design.h"

namespace puffer {

struct InitialPlaceConfig {
  bool keep_existing = false;  // true: refine the current positions instead
  int sweeps = 12;             // Gauss-Seidel iterations
  double jitter_frac = 0.003;  // jitter as a fraction of the die extent
  std::uint64_t seed = 7;
};

void initial_place(Design& design, const InitialPlaceConfig& config = {});

}  // namespace puffer
