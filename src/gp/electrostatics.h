// Spectral electrostatic system (paper Eqs. 3-6, after ePlace [14]).
//
// The placement region is divided into an M x M bin grid. The charge
// density rho (cell area per bin) is expanded in a cosine series with a
// 2D DCT-II; the Poisson equation  -lap(psi) = rho  is solved in the
// spectral domain by dividing each coefficient by (wu^2 + wv^2), and the
// potential / field are evaluated with inverse cosine/sine transforms:
//
//   psi  = sum  a_uv / (wu^2+wv^2) * cos(wu x) cos(wv y)
//   xi_x = sum  a_uv * wu / (wu^2+wv^2) * sin(wu x) cos(wv y)
//   xi_y = sum  a_uv * wv / (wu^2+wv^2) * cos(wu x) sin(wv y)
//
// with wu = pi*u/W, wv = pi*v/H (W, H the die extents) and the DC mode
// dropped. The density penalty is D = sum_i q_i psi(b_i) and its gradient
// w.r.t. a cell position is -q_i * xi(b_i).
//
// The transforms run through a preplanned DctPlan2D (precomputed twiddle
// tables, no per-solve allocation) and the spectral weights
// s*c_u*c_v/(wu^2+wv^2), s*.../(...)*wu, ... are baked into per-mode
// tables at construction, so solve() is three multiplies per mode plus
// the four 2D transforms.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "fft/dct_plan.h"
#include "grid/map2d.h"

namespace puffer {

class ElectrostaticSystem {
 public:
  // nx, ny: bin counts (powers of two). w, h: physical die extents.
  ElectrostaticSystem(int nx, int ny, double w, double h);

  // Solves for the given density map (size nx*ny, row-major, x fastest).
  void solve(const Map2D<double>& density);

  // Test/bench hook (one-PR lifetime): route the four 2D transforms
  // through the allocating free functions in fft/dct.h instead of the
  // preplanned DctPlan2D. The plan is bit-identical to the free
  // functions by construction, so only speed changes; the hook lets the
  // benchmark baseline replicate the pre-plan pipeline faithfully.
  void use_legacy_pipeline(bool on) { legacy_ = on; }

  const Map2D<double>& potential() const { return psi_; }
  const Map2D<double>& field_x() const { return ex_; }
  const Map2D<double>& field_y() const { return ey_; }

  // Total potential energy sum_b rho(b) * psi(b) of the last solve.
  double energy() const { return energy_; }

  int nx() const { return nx_; }
  int ny() const { return ny_; }

 private:
  int nx_, ny_;
  DctPlan2D plan_;
  bool legacy_ = false;
  // Per-mode spectral weights (DC entry zero): coeff = w_psi * a_uv,
  // then c_ex = coeff * wu, c_ey = coeff * wv.
  std::vector<double> w_psi_, wu_, wv_;
  // Preallocated spectra (forward + three weighted coefficient arrays).
  std::vector<double> a_, c_psi_, c_ex_, c_ey_;
  Map2D<double> psi_, ex_, ey_;
  double energy_ = 0.0;
};

}  // namespace puffer
