// Structure-of-arrays mirror of the global-placement hot state.
//
// The Nesterov loop touches the netlist tens of thousands of times per
// flow; walking Design's pointer-rich Cell/Net/Pin objects there costs a
// cache miss per hop. GpSoA flattens exactly the state the GP kernels
// read into contiguous arrays, built once per flow:
//
//   * movable cells in ordinal order: center x/y, width/height, pin count;
//   * nets of degree >= 2 as a CSR over "pin slots" (net_start / per-slot
//     ordinal + offset), net-major so ascending slot order equals the
//     serial net walk order of the scalar kernels;
//   * the transposed cell -> pin-slot CSR (cell_start / cell_slots, slots
//     ascending) that lets the gradient scatter run as a per-cell gather
//     with no write conflicts and no per-chunk gradient buffers;
//   * the per-net chunk id of the fixed kNetGrain/kMaxNetChunks
//     decomposition, so the per-cell gather can replicate the scalar
//     path's chunk-grouped summation association bit-for-bit.
//
// Sync contract (see docs/architecture.md): the mirror's positions are
// valid only at commit points. pull_positions() re-syncs from Design
// after an external stage (legalization, detailed placement, a snapshot
// restore) has moved cells; push_positions() is the engine's commit of
// GP results back into Design. matches() is the test/debug probe for
// "mirror and Design agree bitwise right now".
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/design.h"

namespace puffer {

// Net chunking constants for the WA wirelength fan-out. The chunk
// decomposition (not the worker count) fixes the floating-point fold
// order, so these are part of the numeric contract and shared between
// the scalar and SoA paths.
inline constexpr std::int64_t kNetGrain = 128;
inline constexpr int kMaxNetChunks = 16;

struct GpSoA {
  // --- movable cells, ordinal order ---------------------------------
  std::vector<CellId> cell_ids;           // ordinal -> design cell id
  std::vector<std::int32_t> ordinal_of_cell;  // design cell id -> ordinal / -1
  std::vector<double> cx, cy;             // committed centers (mirror)
  std::vector<double> cw, chh;            // width / height
  std::vector<double> pin_count;          // pins on nets of degree >= 2

  // --- nets (degree >= 2), net-major pin-slot CSR --------------------
  std::vector<std::int64_t> net_start;    // size num_nets()+1
  std::vector<double> net_weight;
  std::vector<std::int32_t> net_chunk;    // fixed-decomposition chunk id
  std::vector<std::int32_t> pin_ord;      // slot -> movable ordinal or -1
  // Movable slots: offset from the cell center. Fixed slots: absolute
  // pin position (so coord = (ord >= 0 ? pos[ord] : 0) + offset never
  // needs a second array).
  std::vector<double> pin_ox, pin_oy;
  std::vector<std::int32_t> slot_net;     // slot -> net index
  std::vector<std::int32_t> slot_chunk;   // slot -> owning net's chunk id

  // --- transposed CSR: movable cell -> its slots, ascending ----------
  std::vector<std::int64_t> cell_start;   // size num_movable()+1
  std::vector<std::int64_t> cell_slots;

  std::size_t num_movable() const { return cell_ids.size(); }
  std::size_t num_nets() const { return net_weight.size(); }
  std::size_t num_slots() const { return pin_ord.size(); }
  int num_net_chunks() const { return net_chunks_; }
  std::int64_t max_net_degree() const { return max_degree_; }

  // Builds topology and pulls positions. Invalidated by netlist
  // structure changes (never during a flow).
  void build(const Design& design);

  // Design -> mirror: re-sync centers after an external commit.
  void pull_positions(const Design& design);
  // Mirror -> Design: write centers back as lower-left corners.
  void push_positions(Design& design) const;
  // True iff every movable's mirrored center equals the Design position
  // bitwise (center = x + width*0.5, the same expression pull uses).
  bool matches(const Design& design) const;

  // FNV-1a over the raw bits of (cx, cy), for bench/CI checksums.
  std::uint64_t position_checksum() const;

 private:
  int net_chunks_ = 1;
  std::int64_t max_degree_ = 0;
};

}  // namespace puffer
