#include "gp/electrostatics.h"

#include <numbers>
#include <stdexcept>

#include "fft/dct.h"
#include "fft/fft.h"

namespace puffer {

ElectrostaticSystem::ElectrostaticSystem(int nx, int ny, double w, double h)
    : nx_(nx), ny_(ny),
      wx_scale_(std::numbers::pi / w),
      wy_scale_(std::numbers::pi / h),
      psi_(nx, ny), ex_(nx, ny), ey_(nx, ny) {
  if (!is_pow2(static_cast<std::size_t>(nx)) ||
      !is_pow2(static_cast<std::size_t>(ny))) {
    throw std::invalid_argument("ElectrostaticSystem: bins must be powers of 2");
  }
  if (w <= 0.0 || h <= 0.0) {
    throw std::invalid_argument("ElectrostaticSystem: bad extents");
  }
}

void ElectrostaticSystem::solve(const Map2D<double>& density) {
  if (density.nx() != nx_ || density.ny() != ny_) {
    throw std::invalid_argument("ElectrostaticSystem: density size mismatch");
  }
  const std::size_t snx = static_cast<std::size_t>(nx_);
  const std::size_t sny = static_cast<std::size_t>(ny_);

  // Forward spectrum of the density.
  const std::vector<double> a = dct2_2d(density.raw(), snx, sny);

  // Orthogonality scale for the inverse evaluation: (2/M)(2/N) c_u c_v,
  // with c_0 = 1/2 (folded into the coefficient arrays so the raw
  // inverse transforms apply no weights).
  const double base = 4.0 / (static_cast<double>(nx_) * static_cast<double>(ny_));
  std::vector<double> c_psi(snx * sny, 0.0);
  std::vector<double> c_ex(snx * sny, 0.0);
  std::vector<double> c_ey(snx * sny, 0.0);
  for (std::size_t v = 0; v < sny; ++v) {
    const double wv = wy_scale_ * static_cast<double>(v);
    for (std::size_t u = 0; u < snx; ++u) {
      if (u == 0 && v == 0) continue;  // DC mode carries no force
      const double wu = wx_scale_ * static_cast<double>(u);
      const double w2 = wu * wu + wv * wv;
      double s = base;
      if (u == 0) s *= 0.5;
      if (v == 0) s *= 0.5;
      const double coeff = s * a[v * snx + u] / w2;
      c_psi[v * snx + u] = coeff;
      c_ex[v * snx + u] = coeff * wu;
      c_ey[v * snx + u] = coeff * wv;
    }
  }

  psi_.raw() = dct3_raw_2d(c_psi, snx, sny);
  ex_.raw() = idxst_dct3_2d(c_ex, snx, sny);
  ey_.raw() = dct3_idxst_2d(c_ey, snx, sny);

  energy_ = 0.0;
  for (std::size_t i = 0; i < snx * sny; ++i) {
    energy_ += density.raw()[i] * psi_.raw()[i];
  }
}

}  // namespace puffer
