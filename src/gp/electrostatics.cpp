#include "gp/electrostatics.h"

#include <numbers>
#include <stdexcept>

#include "common/parallel.h"
#include "fft/dct.h"
#include "fft/fft.h"

namespace puffer {

ElectrostaticSystem::ElectrostaticSystem(int nx, int ny, double w, double h)
    : nx_(nx), ny_(ny),
      plan_(static_cast<std::size_t>(nx), static_cast<std::size_t>(ny)),
      psi_(nx, ny), ex_(nx, ny), ey_(nx, ny) {
  if (w <= 0.0 || h <= 0.0) {
    throw std::invalid_argument("ElectrostaticSystem: bad extents");
  }
  const std::size_t snx = static_cast<std::size_t>(nx_);
  const std::size_t sny = static_cast<std::size_t>(ny_);
  const double wx_scale = std::numbers::pi / w;
  const double wy_scale = std::numbers::pi / h;

  // Orthogonality scale for the inverse evaluation: (2/M)(2/N) c_u c_v,
  // with c_0 = 1/2, folded together with 1/(wu^2+wv^2) into one
  // per-mode weight so the raw inverse transforms apply no weights.
  const double base = 4.0 / (static_cast<double>(nx_) * static_cast<double>(ny_));
  w_psi_.assign(snx * sny, 0.0);
  wu_.resize(snx);
  wv_.resize(sny);
  for (std::size_t u = 0; u < snx; ++u) {
    wu_[u] = wx_scale * static_cast<double>(u);
  }
  for (std::size_t v = 0; v < sny; ++v) {
    wv_[v] = wy_scale * static_cast<double>(v);
  }
  for (std::size_t v = 0; v < sny; ++v) {
    for (std::size_t u = 0; u < snx; ++u) {
      if (u == 0 && v == 0) continue;  // DC mode carries no force
      const double w2 = wu_[u] * wu_[u] + wv_[v] * wv_[v];
      double s = base;
      if (u == 0) s *= 0.5;
      if (v == 0) s *= 0.5;
      w_psi_[v * snx + u] = s / w2;
    }
  }
  a_.resize(snx * sny);
  c_psi_.resize(snx * sny);
  c_ex_.resize(snx * sny);
  c_ey_.resize(snx * sny);
}

void ElectrostaticSystem::solve(const Map2D<double>& density) {
  if (density.nx() != nx_ || density.ny() != ny_) {
    throw std::invalid_argument("ElectrostaticSystem: density size mismatch");
  }
  const std::size_t snx = static_cast<std::size_t>(nx_);
  const std::size_t sny = static_cast<std::size_t>(ny_);

  // Forward spectrum of the density.
  if (legacy_) {
    a_ = puffer::dct2_2d(density.raw(), snx, sny);
  } else {
    plan_.dct2_2d(density.raw(), a_);
  }

  // Weight the spectrum for the three inverse evaluations. Rows are
  // independent (disjoint writes), so the loop fans out over v.
  par::parallel_for(
      0, static_cast<std::int64_t>(sny), 8,
      [&](std::int64_t vb, std::int64_t ve, int) {
        for (std::int64_t vi = vb; vi < ve; ++vi) {
          const std::size_t v = static_cast<std::size_t>(vi);
          const double wvv = wv_[v];
          const std::size_t row = v * snx;
          for (std::size_t u = 0; u < snx; ++u) {
            const double coeff = w_psi_[row + u] * a_[row + u];
            c_psi_[row + u] = coeff;
            c_ex_[row + u] = coeff * wu_[u];
            c_ey_[row + u] = coeff * wvv;
          }
        }
      });

  if (legacy_) {
    psi_.raw() = puffer::dct3_raw_2d(c_psi_, snx, sny);
    ex_.raw() = puffer::idxst_dct3_2d(c_ex_, snx, sny);
    ey_.raw() = puffer::dct3_idxst_2d(c_ey_, snx, sny);
  } else {
    plan_.dct3_raw_2d(c_psi_, psi_.raw());
    plan_.idxst_dct3_2d(c_ex_, ex_.raw());
    plan_.dct3_idxst_2d(c_ey_, ey_.raw());
  }

  // Chunk-ordered fold keeps the energy worker-count independent.
  energy_ = par::parallel_reduce(
      0, static_cast<std::int64_t>(snx * sny), 4096, 0.0,
      [&](std::int64_t b, std::int64_t e) {
        double s = 0.0;
        for (std::int64_t i = b; i < e; ++i) {
          const std::size_t si = static_cast<std::size_t>(i);
          s += density.raw()[si] * psi_.raw()[si];
        }
        return s;
      });
}

}  // namespace puffer
