// ePlace-style electrostatic global placement engine (paper SS II-B).
//
// Minimizes f = W(x,y) + lambda * D(x,y) with Nesterov's accelerated
// gradient method: W is the WA wirelength model, D the electrostatic
// potential energy. Key mechanics reproduced from ePlace [14]:
//
//   * filler cells occupy the whitespace so the equilibrium density is
//     the target density everywhere;
//   * fixed macros inject (target-scaled) static charge so cells flow
//     around them;
//   * per-cell preconditioning by (pin count + lambda * charge);
//   * Lipschitz backtracking step size; lambda grows each iteration by a
//     factor steered by the HPWL delta;
//   * the WA smoothing gamma anneals with the density overflow.
//
// Cell *padding* (the PUFFER routability mechanism) enters here: the
// engine's charge of a movable cell is its padded area, so padded cells
// claim more room and their neighbourhood spreads in subsequent
// iterations. Padding is supplied per movable ordinal via set_padding().
//
// Hot state lives in flat arrays: the engine owns the GpSoA netlist
// mirror (shared with WaWirelength) plus element arrays (movables first,
// then fillers) holding sizes, padding, and the derived rasterization /
// clamp parameters. The density scatter buckets elements into the fixed
// row bands of the parallel decomposition so each band touches only the
// elements overlapping it; the Nesterov vector updates go through the
// simd:: helpers. Every kernel keeps the deterministic contract: results
// are bit-identical across PUFFER_THREADS and PUFFER_SIMD, and the
// retired scalar kernels (GpConfig::legacy_kernels, one-PR lifetime)
// reproduce the SoA results bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gp/electrostatics.h"
#include "gp/soa.h"
#include "gp/wirelength.h"
#include "grid/map2d.h"
#include "netlist/design.h"

namespace puffer {

struct GpConfig {
  int bin_dim = 0;              // bins per axis (power of 2); 0 = auto
  double target_density = 0.9;  // equilibrium density in free area
  double stop_overflow = 0.07;  // final convergence overflow
  int max_iters = 1200;
  bool use_fillers = true;
  std::uint64_t seed = 11;

  // Lambda schedule (ePlace-style multiplicative update).
  double mu_max = 1.10;
  double mu_min = 0.80;
  double hpwl_ref_frac = 0.008;  // reference HPWL delta as fraction of HPWL0
  // Lambda latches (stops growing) once overflow first drops below this.
  double lambda_freeze_overflow = 0.15;

  // Test/bench hook (one-PR lifetime): route the WA gradient and the
  // density rasterization through the retired scalar kernels. Both
  // paths are bit-identical; the hook exists to prove it and to serve
  // as the benchmark baseline replica.
  bool legacy_kernels = false;
};

// Accumulated wall time per kernel family of the Nesterov loop
// (surfaced through FlowMetrics::gp_kernels).
struct GpKernelTimes {
  double wirelength_s = 0.0;  // WA gradient + HPWL
  double density_s = 0.0;     // rasterize + overflow fold + map merge
  double poisson_s = 0.0;     // spectral solve (DCT pipeline)
  double assemble_s = 0.0;    // preconditioned gradient assembly
  double nesterov_s = 0.0;    // step updates outside gradient evals
  int gradient_evals = 0;
  int iterations = 0;

  void add(const GpKernelTimes& o) {
    wirelength_s += o.wirelength_s;
    density_s += o.density_s;
    poisson_s += o.poisson_s;
    assemble_s += o.assemble_s;
    nesterov_s += o.nesterov_s;
    gradient_evals += o.gradient_evals;
    iterations += o.iterations;
  }
};

class EPlaceEngine {
 public:
  EPlaceEngine(Design& design, GpConfig config);
  ~EPlaceEngine();

  EPlaceEngine(const EPlaceEngine&) = delete;
  EPlaceEngine& operator=(const EPlaceEngine&) = delete;

  // Extra width per movable ordinal (indexing follows movable_cells()).
  // Takes effect on the next gradient evaluation.
  void set_padding(const std::vector<double>& pad_width);

  // Runs Nesterov iterations until density overflow <= `overflow_target`
  // or the iteration cap; returns the final overflow. Positions are
  // written back to the design on return.
  double run_to_overflow(double overflow_target);

  // One Nesterov iteration; returns false once the iteration cap is hit
  // or the engine has converged (density overflow stopped improving).
  bool step();

  // True when the overflow has plateaued; cleared by set_padding().
  bool converged() const { return converged_; }

  // Movable-cell ordinal order shared with WaWirelength.
  const std::vector<CellId>& movable_cells() const { return soa_->cell_ids; }

  double density_overflow() const { return overflow_; }
  double last_hpwl() const { return hpwl_; }
  double lambda() const { return lambda_; }
  double step_size() const { return step_; }
  double wl_grad_l1() const { return wl_grad_l1_; }
  double density_grad_l1() const { return density_grad_l1_; }
  int iteration() const { return iter_; }
  int bin_dim() const { return bins_; }
  double bin_w() const { return bin_w_; }

  // Per-kernel wall-time breakdown accumulated since construction.
  const GpKernelTimes& kernel_times() const { return times_; }

  // Writes current solution centers back into the design (lower-left
  // coordinates; padding does not shift the stored position) via the
  // SoA mirror, which stays in sync as a side effect.
  void sync_to_design();

  // The shared netlist mirror (positions valid at commit points).
  const GpSoA& soa() const { return *soa_; }

  // --- test/bench probes ----------------------------------------------
  // Rasterizes the given element centers with the configured kernel and
  // returns the movable+filler density map.
  const Map2D<double>& rasterize_probe(const std::vector<double>& x,
                                       const std::vector<double>& y);
  // Current solver positions (element centers, movables then fillers).
  const std::vector<double>& solver_x() const { return xu_; }
  const std::vector<double>& solver_y() const { return yu_; }
  std::size_t num_elements() const { return elem_w_.size(); }

 private:
  void build_fillers();
  void rasterize_fixed();
  // Recomputes the derived per-element arrays (smoothed raster extents,
  // charge scale, clamp bounds) after sizes or padding change.
  void update_raster_params();
  void rasterize(const std::vector<double>& x, const std::vector<double>& y);
  void rasterize_soa(const std::vector<double>& x,
                     const std::vector<double>& y);
  void rasterize_legacy(const std::vector<double>& x,
                        const std::vector<double>& y);
  // Evaluates the preconditioned gradient at (x, y); updates overflow_,
  // hpwl_ and, on the first call, lambda_.
  void gradient(const std::vector<double>& x, const std::vector<double>& y,
                std::vector<double>& gx, std::vector<double>& gy);
  void clamp_positions(std::vector<double>& x, std::vector<double>& y) const;
  double gamma() const;
  double elem_area(std::size_t i) const {
    return (elem_w_[i] + elem_pad_[i]) * elem_h_[i];
  }

  Design& design_;
  GpConfig config_;
  std::shared_ptr<GpSoA> soa_;
  WaWirelength wirelength_;
  int bins_ = 0;
  double bin_w_ = 1.0, bin_h_ = 1.0;

  // Element arrays: movables (ordinal order) first, then fillers.
  std::vector<double> elem_w_, elem_h_, elem_pad_;
  std::size_t num_movable_ = 0;
  // Derived (update_raster_params): smoothed half extents, charge scale,
  // and the per-element die clamp bounds.
  std::vector<double> ras_hw_, ras_hh_, ras_scale_;
  std::vector<double> xlo_b_, xhi_b_, ylo_b_, yhi_b_;

  // Row-band buckets for the density scatter (rebuilt per rasterize):
  // band b owns the bin rows of parallel chunk b; band_elems_ lists the
  // elements overlapping each band in ascending order.
  int nbands_ = 1;
  std::vector<std::int32_t> band_of_row_;
  std::vector<std::int64_t> band_start_, band_fill_;
  std::vector<std::int32_t> band_elems_;
  std::vector<std::int32_t> ebx0_, ebx1_, eby0_, eby1_;

  std::unique_ptr<ElectrostaticSystem> es_;
  Map2D<double> rho_fixed_;     // target-scaled static macro charge
  Map2D<double> bin_free_cap_;  // target_density * free bin area
  Map2D<double> rho_move_;      // scratch: movable + filler charge
  Map2D<double> rho_real_;      // scratch: real movables only (overflow)
  Map2D<double> rho_total_;     // scratch: movable + filler + fixed

  // Nesterov state and preallocated step scratch.
  std::vector<double> xu_, yu_, xv_, yv_, gxv_, gyv_;
  std::vector<double> gwx_, gwy_;  // WA gradient (movables)
  std::vector<double> xu_new_, yu_new_, gxu_, gyu_, xv_new_, yv_new_;
  double ak_ = 1.0;
  double step_ = 0.0;
  int iter_ = 0;
  bool initialized_ = false;
  bool converged_ = false;
  bool lambda_frozen_ = false;
  double best_overflow_ = 2.0;
  int stall_ = 0;

  double lambda_ = 0.0;
  double overflow_ = 1.0;
  double hpwl_ = 0.0;
  double hpwl0_ = 0.0;
  double total_real_area_ = 1.0;
  double wl_grad_l1_ = 0.0;
  double density_grad_l1_ = 0.0;

  GpKernelTimes times_;
};

}  // namespace puffer
