// ePlace-style electrostatic global placement engine (paper SS II-B).
//
// Minimizes f = W(x,y) + lambda * D(x,y) with Nesterov's accelerated
// gradient method: W is the WA wirelength model, D the electrostatic
// potential energy. Key mechanics reproduced from ePlace [14]:
//
//   * filler cells occupy the whitespace so the equilibrium density is
//     the target density everywhere;
//   * fixed macros inject (target-scaled) static charge so cells flow
//     around them;
//   * per-cell preconditioning by (pin count + lambda * charge);
//   * Lipschitz backtracking step size; lambda grows each iteration by a
//     factor steered by the HPWL delta;
//   * the WA smoothing gamma anneals with the density overflow.
//
// Cell *padding* (the PUFFER routability mechanism) enters here: the
// engine's charge of a movable cell is its padded area, so padded cells
// claim more room and their neighbourhood spreads in subsequent
// iterations. Padding is supplied per movable ordinal via set_padding().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gp/electrostatics.h"
#include "gp/wirelength.h"
#include "grid/map2d.h"
#include "netlist/design.h"

namespace puffer {

struct GpConfig {
  int bin_dim = 0;              // bins per axis (power of 2); 0 = auto
  double target_density = 0.9;  // equilibrium density in free area
  double stop_overflow = 0.07;  // final convergence overflow
  int max_iters = 1200;
  bool use_fillers = true;
  std::uint64_t seed = 11;

  // Lambda schedule (ePlace-style multiplicative update).
  double mu_max = 1.10;
  double mu_min = 0.80;
  double hpwl_ref_frac = 0.008;  // reference HPWL delta as fraction of HPWL0
  // Lambda latches (stops growing) once overflow first drops below this.
  double lambda_freeze_overflow = 0.15;
};

class EPlaceEngine {
 public:
  EPlaceEngine(Design& design, GpConfig config);
  ~EPlaceEngine();

  EPlaceEngine(const EPlaceEngine&) = delete;
  EPlaceEngine& operator=(const EPlaceEngine&) = delete;

  // Extra width per movable ordinal (indexing follows movable_cells()).
  // Takes effect on the next gradient evaluation.
  void set_padding(const std::vector<double>& pad_width);

  // Runs Nesterov iterations until density overflow <= `overflow_target`
  // or the iteration cap; returns the final overflow. Positions are
  // written back to the design on return.
  double run_to_overflow(double overflow_target);

  // One Nesterov iteration; returns false once the iteration cap is hit
  // or the engine has converged (density overflow stopped improving).
  bool step();

  // True when the overflow has plateaued; cleared by set_padding().
  bool converged() const { return converged_; }

  // Movable-cell ordinal order shared with WaWirelength.
  const std::vector<CellId>& movable_cells() const {
    return wirelength_.movable_cells();
  }

  double density_overflow() const { return overflow_; }
  double last_hpwl() const { return hpwl_; }
  double lambda() const { return lambda_; }
  double step_size() const { return step_; }
  double wl_grad_l1() const { return wl_grad_l1_; }
  double density_grad_l1() const { return density_grad_l1_; }
  int iteration() const { return iter_; }
  int bin_dim() const { return bins_; }
  double bin_w() const { return bin_w_; }

  // Writes current solution centers back into the design (lower-left
  // coordinates; padding does not shift the stored position).
  void sync_to_design();

 private:
  struct Element {  // movable cell or filler, in solver order
    double w, h;    // physical size (fillers: synthetic square)
    double pad = 0.0;  // extra width (movables only)
    bool filler = false;
    double area() const { return (w + pad) * h; }
  };

  void build_fillers();
  void rasterize_fixed();
  void rasterize(const std::vector<double>& x, const std::vector<double>& y);
  // Evaluates the preconditioned gradient at (x, y); updates overflow_,
  // hpwl_ and, on the first call, lambda_.
  void gradient(const std::vector<double>& x, const std::vector<double>& y,
                std::vector<double>& gx, std::vector<double>& gy);
  void clamp_positions(std::vector<double>& x, std::vector<double>& y) const;
  double gamma() const;

  Design& design_;
  GpConfig config_;
  WaWirelength wirelength_;
  int bins_ = 0;
  double bin_w_ = 1.0, bin_h_ = 1.0;

  std::vector<Element> elems_;  // movables first, then fillers
  std::size_t num_movable_ = 0;

  std::unique_ptr<ElectrostaticSystem> es_;
  Map2D<double> rho_fixed_;    // target-scaled static macro charge
  Map2D<double> bin_free_cap_;  // target_density * free bin area
  Map2D<double> rho_move_;     // scratch: movable + filler charge
  Map2D<double> rho_real_;     // scratch: real movables only (overflow)

  // Nesterov state.
  std::vector<double> xu_, yu_, xv_, yv_, gxv_, gyv_;
  double ak_ = 1.0;
  double step_ = 0.0;
  int iter_ = 0;
  bool initialized_ = false;
  bool converged_ = false;
  bool lambda_frozen_ = false;
  double best_overflow_ = 2.0;
  int stall_ = 0;

  double lambda_ = 0.0;
  double overflow_ = 1.0;
  double hpwl_ = 0.0;
  double hpwl0_ = 0.0;
  double total_real_area_ = 1.0;
  double wl_grad_l1_ = 0.0;
  double density_grad_l1_ = 0.0;
};

}  // namespace puffer
