// Weighted-average (WA) wirelength model and its analytic gradient
// (paper Eq. 2, from Hsu et al. [15], [16]).
//
// The model smooths max/min over the pins of a net:
//   W_ex = sum_j x_j e^{x_j/g} / sum_j e^{x_j/g}
//        - sum_j x_j e^{-x_j/g} / sum_j e^{-x_j/g}
// and analogously in y. Exponentials are shifted by the per-net max/min
// for numerical stability. The gradient is accumulated per *cell* (all
// pins of a cell move rigidly with it during global placement).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/design.h"

namespace puffer {

class WaWirelength {
 public:
  // Snapshots the netlist structure (net->pin->cell topology and pin
  // offsets). Cell positions are passed per evaluation, so the engine can
  // evaluate at Nesterov reference points without mutating the design.
  explicit WaWirelength(const Design& design);

  // Evaluates total weighted WA wirelength at the given movable-cell
  // center positions, and writes dW/dx, dW/dy per movable cell.
  // `xc`, `yc` are indexed by movable-cell ordinal (see movable_cells()).
  double evaluate(const std::vector<double>& xc, const std::vector<double>& yc,
                  double gamma, std::vector<double>& grad_x,
                  std::vector<double>& grad_y) const;

  // True HPWL at the same positions (for reporting and the lambda update).
  double hpwl(const std::vector<double>& xc, const std::vector<double>& yc) const;

  // Movable cell ids in ordinal order; the engine shares this indexing.
  const std::vector<CellId>& movable_cells() const { return movable_; }
  // Ordinal of a cell id, or -1 if the cell is fixed.
  const std::vector<std::int32_t>& ordinal_of() const { return ordinal_; }

  // Number of pins on each movable cell (Nesterov preconditioner term).
  const std::vector<double>& pin_counts() const { return pin_count_; }

 private:
  struct NetPin {
    std::int32_t ordinal;  // movable ordinal or -1 for fixed
    double fx, fy;         // absolute position contribution when fixed
    double ox, oy;         // offset from the movable cell's center
  };
  struct CompiledNet {
    double weight;
    std::vector<NetPin> pins;
  };

  double hpwl_chunk(const std::vector<double>& xc,
                    const std::vector<double>& yc, std::int64_t nb,
                    std::int64_t ne) const;
  std::vector<CompiledNet> nets_;
  std::vector<CellId> movable_;
  std::vector<std::int32_t> ordinal_;
  std::vector<double> pin_count_;

  // Per-chunk gradient scratch for the parallel evaluate(): chunk c
  // accumulates into scratch_g*_[c] only, and the merge folds chunks in
  // ascending order so the result is independent of the worker count.
  mutable std::vector<std::vector<double>> scratch_gx_, scratch_gy_;
  mutable std::vector<double> chunk_total_;
};

}  // namespace puffer
