// Weighted-average (WA) wirelength model and its analytic gradient
// (paper Eq. 2, from Hsu et al. [15], [16]).
//
// The model smooths max/min over the pins of a net:
//   W_ex = sum_j x_j e^{x_j/g} / sum_j e^{x_j/g}
//        - sum_j x_j e^{-x_j/g} / sum_j e^{-x_j/g}
// and analogously in y. Exponentials are shifted by the per-net max/min
// for numerical stability. The gradient is accumulated per *cell* (all
// pins of a cell move rigidly with it during global placement).
//
// The default implementation runs over the GpSoA flat arrays in two
// passes: pass A (parallel over nets, fixed kNetGrain/kMaxNetChunks
// decomposition) computes each net's accumulator sums in L1-resident
// per-net buffers and stores one finished gradient term per movable
// slot; pass B (parallel over cells) gathers those terms through the
// transposed cell->slot CSR, folding them grouped by net chunk in chunk
// order -- exactly the association the scalar path's per-chunk-buffer
// merge produces, so the result is bit-identical to the legacy kernel
// and, as always, to itself across PUFFER_THREADS. The legacy scalar
// path (per-chunk gradient buffers + ordered merge) is kept behind
// use_legacy_kernels() for one PR as the bit-identity oracle and bench
// baseline replica.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gp/soa.h"
#include "netlist/design.h"

namespace puffer {

class WaWirelength {
 public:
  // Snapshots the netlist structure (net->pin->cell topology and pin
  // offsets). Cell positions are passed per evaluation, so the engine can
  // evaluate at Nesterov reference points without mutating the design.
  explicit WaWirelength(const Design& design);
  // Shares an existing mirror (the engine's) instead of building one.
  explicit WaWirelength(std::shared_ptr<const GpSoA> soa);

  // Test/bench hook (one-PR lifetime): route evaluate() through the
  // legacy scalar kernel instead of the SoA two-pass kernel. Both paths
  // produce bit-identical results; the hook exists to prove it.
  void use_legacy_kernels(bool on) { legacy_ = on; }

  // Evaluates total weighted WA wirelength at the given movable-cell
  // center positions, and writes dW/dx, dW/dy per movable cell.
  // `xc`, `yc` are indexed by movable-cell ordinal (see movable_cells());
  // entries past the movable count (engine filler elements) are ignored.
  double evaluate(const std::vector<double>& xc, const std::vector<double>& yc,
                  double gamma, std::vector<double>& grad_x,
                  std::vector<double>& grad_y) const;

  // True HPWL at the same positions (for reporting and the lambda update).
  double hpwl(const std::vector<double>& xc, const std::vector<double>& yc) const;

  // HPWL computed by the last evaluate() on the SoA path, at the same
  // positions, for free out of pass A's per-net min/max (bit-identical
  // to hpwl() at those positions). Valid only after evaluate() and only
  // when the legacy hook is off.
  double last_hpwl() const { return hpwl_last_; }

  // Movable cell ids in ordinal order; the engine shares this indexing.
  const std::vector<CellId>& movable_cells() const { return soa_->cell_ids; }
  // Ordinal of a cell id, or -1 if the cell is fixed.
  const std::vector<std::int32_t>& ordinal_of() const {
    return soa_->ordinal_of_cell;
  }

  // Number of pins on each movable cell (Nesterov preconditioner term).
  const std::vector<double>& pin_counts() const { return soa_->pin_count; }

  const GpSoA& soa() const { return *soa_; }

 private:
  double evaluate_soa(const std::vector<double>& xc,
                      const std::vector<double>& yc, double gamma,
                      std::vector<double>& grad_x,
                      std::vector<double>& grad_y) const;
  double evaluate_legacy(const std::vector<double>& xc,
                         const std::vector<double>& yc, double gamma,
                         std::vector<double>& grad_x,
                         std::vector<double>& grad_y) const;
  double hpwl_chunk(const std::vector<double>& xc,
                    const std::vector<double>& yc, std::int64_t nb,
                    std::int64_t ne) const;

  std::shared_ptr<const GpSoA> soa_;
  bool legacy_ = false;

  // --- SoA pass-A scratch ---------------------------------------------
  // Per-slot gradient terms w * (d_plus - d_minus), x/y interleaved
  // (dw_[2s], dw_[2s+1]) so pass B streams one array; chunk c writes
  // only its nets' slot range (net-major ranges are disjoint per chunk),
  // so the array is safely shared across workers. Fixed-pin slots are
  // never read by pass B and stay unwritten.
  mutable std::vector<double> dw_;
  // Per-chunk net-local buffers (coordinates + shifted exponentials,
  // both dimensions), sized once to the maximum net degree.
  struct NetScratch {
    std::vector<double> cx, cy, epx, emx, epy, emy;
  };
  mutable std::vector<NetScratch> net_scratch_;
  mutable std::vector<double> chunk_total_, chunk_hpwl_;
  mutable double hpwl_last_ = 0.0;

  // --- legacy per-chunk gradient scratch ------------------------------
  mutable std::vector<std::vector<double>> scratch_gx_, scratch_gy_;
  // AoS netlist replica of the retired kernel (one heap-allocated pin
  // vector per net), built on first legacy evaluate. The baseline
  // benchmark leg must pay the same pointer-chasing the old kernel paid,
  // or the measured speedup would be against a strawman.
  struct LegacyNetPin {
    std::int32_t ordinal;
    double ox, oy, fx, fy;
  };
  struct LegacyNet {
    double weight;
    std::vector<LegacyNetPin> pins;
  };
  mutable std::vector<LegacyNet> legacy_nets_;
  void build_legacy_nets() const;
};

}  // namespace puffer
