#include "gp/engine.h"

#include <algorithm>
#include <cmath>

#include "common/logger.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "fft/fft.h"

namespace puffer {

namespace {
constexpr const char* kTag = "gp";
}

EPlaceEngine::EPlaceEngine(Design& design, GpConfig config)
    : design_(design), config_(config), wirelength_(design) {
  const std::size_t n_mov = wirelength_.movable_cells().size();
  if (config_.bin_dim <= 0) {
    // Aim for a couple of cells per bin, within [32, 128] bins per axis.
    const std::size_t want = next_pow2(static_cast<std::size_t>(
        std::sqrt(static_cast<double>(std::max<std::size_t>(n_mov, 1)) / 2.0)));
    bins_ = static_cast<int>(std::clamp<std::size_t>(want, 32, 128));
  } else {
    bins_ = static_cast<int>(next_pow2(static_cast<std::size_t>(config_.bin_dim)));
  }
  bin_w_ = design.die.width() / bins_;
  bin_h_ = design.die.height() / bins_;
  es_ = std::make_unique<ElectrostaticSystem>(bins_, bins_, design.die.width(),
                                              design.die.height());
  rho_fixed_ = Map2D<double>(bins_, bins_);
  bin_free_cap_ = Map2D<double>(bins_, bins_);
  rho_move_ = Map2D<double>(bins_, bins_);
  rho_real_ = Map2D<double>(bins_, bins_);

  elems_.reserve(n_mov);
  xu_.reserve(n_mov);
  yu_.reserve(n_mov);
  for (CellId cid : wirelength_.movable_cells()) {
    const Cell& c = design.cells[static_cast<std::size_t>(cid)];
    Element e;
    e.w = c.width;
    e.h = c.height;
    elems_.push_back(e);
    xu_.push_back(c.x + c.width * 0.5);
    yu_.push_back(c.y + c.height * 0.5);
    total_real_area_ += c.area();
  }
  num_movable_ = elems_.size();

  rasterize_fixed();
  if (config_.use_fillers) build_fillers();
  xv_ = xu_;
  yv_ = yu_;
  clamp_positions(xu_, yu_);
  clamp_positions(xv_, yv_);
}

EPlaceEngine::~EPlaceEngine() = default;

void EPlaceEngine::set_padding(const std::vector<double>& pad_width) {
  const std::size_t n = std::min(pad_width.size(), num_movable_);
  for (std::size_t i = 0; i < n; ++i) {
    elems_[i].pad = std::max(0.0, pad_width[i]);
  }
  // New areas change the equilibrium; resume optimizing.
  converged_ = false;
  best_overflow_ = 2.0;
  stall_ = 0;
}

void EPlaceEngine::build_fillers() {
  // Whitespace to occupy: target_density * free area - movable area.
  double free_area = 0.0;
  for (const double cap : bin_free_cap_.raw()) free_area += cap;
  // bin_free_cap_ already carries the target_density factor.
  const double movable_area = total_real_area_;
  const double filler_total = std::max(0.0, free_area - movable_area);
  if (filler_total <= 0.0 || num_movable_ == 0) return;

  double avg_area = movable_area / static_cast<double>(num_movable_);
  const double side_h = design_.tech.row_height;
  const double side_w = std::max(design_.tech.site_width, avg_area / side_h);
  const double filler_area = side_w * side_h;
  std::size_t count = static_cast<std::size_t>(filler_total / filler_area);
  count = std::min(count, num_movable_ * 2);  // perf guard
  if (count == 0) return;
  const double each_area = filler_total / static_cast<double>(count);
  const double w = each_area / side_h;

  Rng rng(config_.seed);
  for (std::size_t i = 0; i < count; ++i) {
    Element e;
    e.w = w;
    e.h = side_h;
    e.filler = true;
    elems_.push_back(e);
    xu_.push_back(rng.uniform(design_.die.xlo + w, design_.die.xhi - w));
    yu_.push_back(rng.uniform(design_.die.ylo + side_h, design_.die.yhi - side_h));
  }
  PUFFER_LOG_DEBUG(kTag, "added %zu fillers (%.1f area each)", count, each_area);
}

void EPlaceEngine::rasterize_fixed() {
  // Static charge of macros, scaled by target density so that a uniform
  // target-density sea is an equilibrium; also the free-capacity map used
  // by the overflow metric.
  Map2D<double> macro_area(bins_, bins_);
  for (const Cell& c : design_.cells) {
    if (!c.is_macro()) continue;
    const Rect r = c.rect().clamped(design_.die);
    if (r.empty()) continue;
    const int x0 = std::clamp(static_cast<int>((r.xlo - design_.die.xlo) / bin_w_), 0, bins_ - 1);
    const int x1 = std::clamp(static_cast<int>((r.xhi - design_.die.xlo) / bin_w_), 0, bins_ - 1);
    const int y0 = std::clamp(static_cast<int>((r.ylo - design_.die.ylo) / bin_h_), 0, bins_ - 1);
    const int y1 = std::clamp(static_cast<int>((r.yhi - design_.die.ylo) / bin_h_), 0, bins_ - 1);
    for (int by = y0; by <= y1; ++by) {
      for (int bx = x0; bx <= x1; ++bx) {
        const Rect bin{design_.die.xlo + bx * bin_w_, design_.die.ylo + by * bin_h_,
                       design_.die.xlo + (bx + 1) * bin_w_,
                       design_.die.ylo + (by + 1) * bin_h_};
        macro_area.at(bx, by) += bin.overlap_area(r);
      }
    }
  }
  const double bin_area = bin_w_ * bin_h_;
  for (int by = 0; by < bins_; ++by) {
    for (int bx = 0; bx < bins_; ++bx) {
      const double ma = std::min(macro_area.at(bx, by), bin_area);
      rho_fixed_.at(bx, by) = config_.target_density * ma;
      bin_free_cap_.at(bx, by) = config_.target_density * (bin_area - ma);
    }
  }
}

void EPlaceEngine::rasterize(const std::vector<double>& x,
                             const std::vector<double>& y) {
  rho_move_.fill(0.0);
  rho_real_.fill(0.0);
  const double die_x = design_.die.xlo;
  const double die_y = design_.die.ylo;
  // Row-banded scatter: every chunk scans all elements but writes only
  // the bin rows it owns, so per-bin addition order equals the serial
  // element order and the result is worker-count independent.
  par::parallel_for(
      0, bins_, std::max(1, bins_ / 8),
      [&](std::int64_t band_lo, std::int64_t band_hi_excl, int) {
        const int lo = static_cast<int>(band_lo);
        const int hi = static_cast<int>(band_hi_excl) - 1;
        for (std::size_t i = 0; i < elems_.size(); ++i) {
          const Element& e = elems_[i];
          // ePlace local smoothing: a cell narrower than a bin is widened
          // to one bin with its charge density scaled down to preserve
          // area.
          double w = e.w + e.pad;
          double h = e.h;
          double scale = 1.0;
          if (w < bin_w_) {
            scale *= w / bin_w_;
            w = bin_w_;
          }
          if (h < bin_h_) {
            scale *= h / bin_h_;
            h = bin_h_;
          }
          const double xlo = x[i] - w * 0.5, xhi = x[i] + w * 0.5;
          const double ylo = y[i] - h * 0.5, yhi = y[i] + h * 0.5;
          const int bx0 = std::clamp(static_cast<int>((xlo - die_x) / bin_w_), 0, bins_ - 1);
          const int bx1 = std::clamp(static_cast<int>((xhi - die_x) / bin_w_), 0, bins_ - 1);
          const int by0 = std::max(
              lo, std::clamp(static_cast<int>((ylo - die_y) / bin_h_), 0, bins_ - 1));
          const int by1 = std::min(
              hi, std::clamp(static_cast<int>((yhi - die_y) / bin_h_), 0, bins_ - 1));
          for (int by = by0; by <= by1; ++by) {
            const double b_ylo = die_y + by * bin_h_;
            const double oy = std::min(yhi, b_ylo + bin_h_) - std::max(ylo, b_ylo);
            if (oy <= 0.0) continue;
            for (int bx = bx0; bx <= bx1; ++bx) {
              const double b_xlo = die_x + bx * bin_w_;
              const double ox = std::min(xhi, b_xlo + bin_w_) - std::max(xlo, b_xlo);
              if (ox <= 0.0) continue;
              const double a = ox * oy * scale;
              rho_move_.at(bx, by) += a;
              if (!e.filler) rho_real_.at(bx, by) += a;
            }
          }
        }
      },
      8);
}

double EPlaceEngine::gamma() const {
  // WA smoothing annealed with overflow: wide basin early, sharp late.
  const double t = clamp(overflow_, 0.0, 1.0);
  return bin_w_ * (0.5 + 7.5 * t);
}

void EPlaceEngine::gradient(const std::vector<double>& x,
                            const std::vector<double>& y,
                            std::vector<double>& gx, std::vector<double>& gy) {
  // Wirelength part (movables only). The scratch vectors are thread_local
  // (engines on different threads must not share them), but the parallel
  // lambdas below must see the *caller's* instances: thread_local names
  // are not captured, each worker would resolve them to its own empty
  // vector. Bind ordinary references so the capture is by caller address.
  static thread_local std::vector<double> gwx_tls, gwy_tls;
  std::vector<double>& gwx = gwx_tls;
  std::vector<double>& gwy = gwy_tls;
  const std::vector<double> xm(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(num_movable_));
  const std::vector<double> ym(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(num_movable_));
  wirelength_.evaluate(xm, ym, gamma(), gwx, gwy);
  hpwl_ = wirelength_.hpwl(xm, ym);

  // Density part.
  rasterize(x, y);
  // Overflow metric from real movables vs free capacity (chunk-ordered
  // fold, so the total is worker-count independent).
  const double over = par::parallel_reduce(
      0, static_cast<std::int64_t>(rho_real_.raw().size()), 4096, 0.0,
      [&](std::int64_t b, std::int64_t e) {
        double s = 0.0;
        for (std::int64_t i = b; i < e; ++i) {
          const std::size_t si = static_cast<std::size_t>(i);
          s += std::max(0.0, rho_real_.raw()[si] - bin_free_cap_.raw()[si]);
        }
        return s;
      });
  overflow_ = over / total_real_area_;

  Map2D<double> rho = rho_move_;
  par::parallel_for(0, static_cast<std::int64_t>(rho.raw().size()), 4096,
                    [&](std::int64_t b, std::int64_t e, int) {
                      for (std::int64_t i = b; i < e; ++i) {
                        rho.raw()[static_cast<std::size_t>(i)] +=
                            rho_fixed_.raw()[static_cast<std::size_t>(i)];
                      }
                    });
  es_->solve(rho);

  if (!initialized_) {
    // lambda0 = |grad W|_1 / |q xi|_1 so both terms start balanced.
    double wl_l1 = 0.0, d_l1 = 0.0;
    for (std::size_t i = 0; i < num_movable_; ++i) {
      wl_l1 += std::abs(gwx[i]) + std::abs(gwy[i]);
    }
    for (std::size_t i = 0; i < elems_.size(); ++i) {
      const int bx = std::clamp(static_cast<int>((x[i] - design_.die.xlo) / bin_w_), 0, bins_ - 1);
      const int by = std::clamp(static_cast<int>((y[i] - design_.die.ylo) / bin_h_), 0, bins_ - 1);
      const double q = elems_[i].area();
      d_l1 += q * (std::abs(es_->field_x().at(bx, by)) +
                   std::abs(es_->field_y().at(bx, by)));
    }
    lambda_ = d_l1 > 0.0 ? wl_l1 / d_l1 : 1.0;
    initialized_ = true;
    PUFFER_LOG_DEBUG(kTag, "lambda0 = %.4g", lambda_);
  }

  gx.assign(elems_.size(), 0.0);
  gy.assign(elems_.size(), 0.0);
  wl_grad_l1_ = par::parallel_reduce(
      0, static_cast<std::int64_t>(num_movable_), 4096, 0.0,
      [&](std::int64_t b, std::int64_t e) {
        double s = 0.0;
        for (std::int64_t i = b; i < e; ++i) {
          s += std::abs(gwx[static_cast<std::size_t>(i)]) +
               std::abs(gwy[static_cast<std::size_t>(i)]);
        }
        return s;
      });
  // Gradient assembly: each chunk writes its own gx/gy slice and a
  // per-chunk density-L1 partial, folded in chunk order below.
  const std::int64_t n_elems = static_cast<std::int64_t>(elems_.size());
  density_grad_l1_ = par::parallel_reduce(
      0, n_elems, 2048, 0.0, [&](std::int64_t b, std::int64_t e) {
        double d_l1 = 0.0;
        for (std::int64_t ii = b; ii < e; ++ii) {
          const std::size_t i = static_cast<std::size_t>(ii);
          const int bx = std::clamp(static_cast<int>((x[i] - design_.die.xlo) / bin_w_), 0, bins_ - 1);
          const int by = std::clamp(static_cast<int>((y[i] - design_.die.ylo) / bin_h_), 0, bins_ - 1);
          const double q = elems_[i].area();
          // dD/dx = -q * xi_x (field points away from charge
          // accumulations).
          double dx = -lambda_ * q * es_->field_x().at(bx, by);
          double dy = -lambda_ * q * es_->field_y().at(bx, by);
          d_l1 += std::abs(dx) + std::abs(dy);
          double pins = 0.0;
          if (i < num_movable_) {
            dx += gwx[i];
            dy += gwy[i];
            pins = wirelength_.pin_counts()[i];
          }
          const double precond = std::max(1.0, pins + lambda_ * q);
          gx[i] = dx / precond;
          gy[i] = dy / precond;
        }
        return d_l1;
      });
}

void EPlaceEngine::clamp_positions(std::vector<double>& x,
                                   std::vector<double>& y) const {
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    const double hw = (elems_[i].w + elems_[i].pad) * 0.5;
    const double hh = elems_[i].h * 0.5;
    x[i] = clamp(x[i], design_.die.xlo + hw, design_.die.xhi - hw);
    y[i] = clamp(y[i], design_.die.ylo + hh, design_.die.yhi - hh);
  }
}

bool EPlaceEngine::step() {
  if (iter_ >= config_.max_iters || converged_) return false;
  const std::size_t n = elems_.size();

  if (iter_ == 0 && gxv_.empty()) {
    gradient(xv_, yv_, gxv_, gyv_);
    // Initial step: largest preconditioned gradient moves one bin.
    double gmax = 1e-12;
    for (std::size_t i = 0; i < n; ++i) {
      gmax = std::max(gmax, std::max(std::abs(gxv_[i]), std::abs(gyv_[i])));
    }
    step_ = bin_w_ / gmax;
  }

  const double hpwl_prev = hpwl_;

  // Backtracking on the Lipschitz estimate.
  std::vector<double> xu_new(n), yu_new(n), gxu(n), gyu(n);
  double alpha = step_ * 1.1;  // allow mild growth between iterations
  for (int bt = 0; bt < 2; ++bt) {
    for (std::size_t i = 0; i < n; ++i) {
      xu_new[i] = xv_[i] - alpha * gxv_[i];
      yu_new[i] = yv_[i] - alpha * gyv_[i];
    }
    clamp_positions(xu_new, yu_new);
    gradient(xu_new, yu_new, gxu, gyu);
    double dp = 0.0, dg = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double px = xu_new[i] - xv_[i], py = yu_new[i] - yv_[i];
      const double qx = gxu[i] - gxv_[i], qy = gyu[i] - gyv_[i];
      dp += px * px + py * py;
      dg += qx * qx + qy * qy;
    }
    const double lip = std::sqrt(dp / std::max(dg, 1e-30));
    if (alpha <= lip * 0.98 || bt == 1) {
      if (alpha > lip) alpha = lip;
      break;
    }
    alpha = lip;
  }
  step_ = alpha;

  // Nesterov extrapolation.
  const double a_next = (1.0 + std::sqrt(4.0 * ak_ * ak_ + 1.0)) * 0.5;
  const double coef = (ak_ - 1.0) / a_next;
  std::vector<double> xv_new(n), yv_new(n);
  for (std::size_t i = 0; i < n; ++i) {
    xv_new[i] = xu_new[i] + coef * (xu_new[i] - xu_[i]);
    yv_new[i] = yu_new[i] + coef * (yu_new[i] - yu_[i]);
  }
  clamp_positions(xv_new, yv_new);

  xu_.swap(xu_new);
  yu_.swap(yu_new);
  xv_.swap(xv_new);
  yv_.swap(yv_new);
  ak_ = a_next;
  gradient(xv_, yv_, gxv_, gyv_);

  // Lambda schedule, steered by the HPWL delta over this iteration.
  // Monotone non-decreasing: a large HPWL jump pauses the growth (mu -> 1)
  // so wirelength can recover, but lambda never shrinks -- this guarantees
  // the density term eventually dominates and the placement spreads.
  if (hpwl0_ <= 0.0) hpwl0_ = std::max(hpwl_, 1.0);
  const double ref = std::max(config_.hpwl_ref_frac * hpwl0_, 1.0);
  const double delta = hpwl_ - hpwl_prev;
  double mu = std::pow(config_.mu_max, 1.0 - delta / ref);
  mu = clamp(mu, 1.0, config_.mu_max);
  // Two-phase schedule: lambda grows monotonically while the placement
  // spreads, then latches permanently once the overflow first drops below
  // the freeze threshold. Past that point the density weight is strong
  // enough to hold the spread (and to respond to padding), and further
  // growth would only trade wirelength for nothing.
  if (overflow_ < config_.lambda_freeze_overflow) lambda_frozen_ = true;
  if (lambda_frozen_) mu = 1.0;
  lambda_ *= mu;

  ++iter_;
  if (overflow_ < best_overflow_ - 1e-3) {
    best_overflow_ = overflow_;
    stall_ = 0;
  } else if (++stall_ >= 100) {
    converged_ = true;
    PUFFER_LOG_DEBUG(kTag, "converged: overflow plateau at %.4f (iter %d)",
                     overflow_, iter_);
  }
  if (iter_ % 50 == 0) {
    PUFFER_LOG_DEBUG(kTag, "iter %d overflow %.4f hpwl %.4g lambda %.3g",
                     iter_, overflow_, hpwl_, lambda_);
  }
  return true;
}

double EPlaceEngine::run_to_overflow(double overflow_target) {
  // Always take at least one step so callers make progress even when the
  // initial (clustered) state momentarily reads as low overflow. The
  // engine's converged() plateau guard stops the loop when the target is
  // unreachable at this bin granularity (continuing would only grow
  // lambda and inflate wirelength).
  do {
    if (!step()) break;
  } while (overflow_ > overflow_target);
  sync_to_design();
  return overflow_;
}

void EPlaceEngine::sync_to_design() {
  const auto& ids = wirelength_.movable_cells();
  for (std::size_t i = 0; i < num_movable_; ++i) {
    Cell& c = design_.cells[static_cast<std::size_t>(ids[i])];
    c.x = xu_[i] - c.width * 0.5;
    c.y = yu_[i] - c.height * 0.5;
  }
}

}  // namespace puffer
