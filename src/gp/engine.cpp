#include "gp/engine.h"

#include <algorithm>
#include <cmath>

#include "common/logger.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/timer.h"
#include "fft/fft.h"

namespace puffer {

namespace {
constexpr const char* kTag = "gp";

std::shared_ptr<GpSoA> make_soa(const Design& design) {
  auto soa = std::make_shared<GpSoA>();
  soa->build(design);
  return soa;
}

}  // namespace

EPlaceEngine::EPlaceEngine(Design& design, GpConfig config)
    : design_(design), config_(config), soa_(make_soa(design)),
      wirelength_(soa_) {
  wirelength_.use_legacy_kernels(config_.legacy_kernels);
  const std::size_t n_mov = soa_->num_movable();
  if (config_.bin_dim <= 0) {
    // Aim for a couple of cells per bin, within [32, 128] bins per axis.
    const std::size_t want = next_pow2(static_cast<std::size_t>(
        std::sqrt(static_cast<double>(std::max<std::size_t>(n_mov, 1)) / 2.0)));
    bins_ = static_cast<int>(std::clamp<std::size_t>(want, 32, 128));
  } else {
    bins_ = static_cast<int>(next_pow2(static_cast<std::size_t>(config_.bin_dim)));
  }
  bin_w_ = design.die.width() / bins_;
  bin_h_ = design.die.height() / bins_;
  es_ = std::make_unique<ElectrostaticSystem>(bins_, bins_, design.die.width(),
                                              design.die.height());
  es_->use_legacy_pipeline(config_.legacy_kernels);
  rho_fixed_ = Map2D<double>(bins_, bins_);
  bin_free_cap_ = Map2D<double>(bins_, bins_);
  rho_move_ = Map2D<double>(bins_, bins_);
  rho_real_ = Map2D<double>(bins_, bins_);
  rho_total_ = Map2D<double>(bins_, bins_);

  // Row bands of the density scatter: one band per chunk of the same
  // fixed decomposition rasterize() fans out with.
  nbands_ = par::chunk_count(bins_, std::max(1, bins_ / 8), 8);
  band_of_row_.resize(static_cast<std::size_t>(bins_));
  for (int b = 0; b < nbands_; ++b) {
    const auto [lo, hi] = par::chunk_range(bins_, nbands_, b);
    for (std::int64_t r = lo; r < hi; ++r) {
      band_of_row_[static_cast<std::size_t>(r)] = b;
    }
  }
  band_start_.resize(static_cast<std::size_t>(nbands_) + 1);
  band_fill_.resize(static_cast<std::size_t>(nbands_));

  num_movable_ = n_mov;
  elem_w_ = soa_->cw;
  elem_h_ = soa_->chh;
  elem_pad_.assign(n_mov, 0.0);
  xu_ = soa_->cx;
  yu_ = soa_->cy;
  for (std::size_t i = 0; i < n_mov; ++i) {
    total_real_area_ += elem_w_[i] * elem_h_[i];
  }

  rasterize_fixed();
  if (config_.use_fillers) build_fillers();
  update_raster_params();
  xv_ = xu_;
  yv_ = yu_;
  clamp_positions(xu_, yu_);
  clamp_positions(xv_, yv_);
}

EPlaceEngine::~EPlaceEngine() = default;

void EPlaceEngine::set_padding(const std::vector<double>& pad_width) {
  const std::size_t n = std::min(pad_width.size(), num_movable_);
  for (std::size_t i = 0; i < n; ++i) {
    elem_pad_[i] = std::max(0.0, pad_width[i]);
  }
  update_raster_params();
  // New areas change the equilibrium; resume optimizing.
  converged_ = false;
  best_overflow_ = 2.0;
  stall_ = 0;
}

void EPlaceEngine::update_raster_params() {
  const std::size_t n = elem_w_.size();
  ras_hw_.resize(n);
  ras_hh_.resize(n);
  ras_scale_.resize(n);
  xlo_b_.resize(n);
  xhi_b_.resize(n);
  ylo_b_.resize(n);
  yhi_b_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // ePlace local smoothing: a cell narrower than a bin is widened to
    // one bin with its charge density scaled down to preserve area.
    double w = elem_w_[i] + elem_pad_[i];
    double h = elem_h_[i];
    double scale = 1.0;
    if (w < bin_w_) {
      scale *= w / bin_w_;
      w = bin_w_;
    }
    if (h < bin_h_) {
      scale *= h / bin_h_;
      h = bin_h_;
    }
    ras_hw_[i] = w * 0.5;
    ras_hh_[i] = h * 0.5;
    ras_scale_[i] = scale;
    // Die clamp bounds use the physical (unsmoothed) padded extents.
    const double hw = (elem_w_[i] + elem_pad_[i]) * 0.5;
    const double hh = elem_h_[i] * 0.5;
    xlo_b_[i] = design_.die.xlo + hw;
    xhi_b_[i] = design_.die.xhi - hw;
    ylo_b_[i] = design_.die.ylo + hh;
    yhi_b_[i] = design_.die.yhi - hh;
  }
  ebx0_.resize(n);
  ebx1_.resize(n);
  eby0_.resize(n);
  eby1_.resize(n);
}

void EPlaceEngine::build_fillers() {
  // Whitespace to occupy: target_density * free area - movable area.
  double free_area = 0.0;
  for (const double cap : bin_free_cap_.raw()) free_area += cap;
  // bin_free_cap_ already carries the target_density factor.
  const double movable_area = total_real_area_;
  const double filler_total = std::max(0.0, free_area - movable_area);
  if (filler_total <= 0.0 || num_movable_ == 0) return;

  double avg_area = movable_area / static_cast<double>(num_movable_);
  const double side_h = design_.tech.row_height;
  const double side_w = std::max(design_.tech.site_width, avg_area / side_h);
  const double filler_area = side_w * side_h;
  std::size_t count = static_cast<std::size_t>(filler_total / filler_area);
  count = std::min(count, num_movable_ * 2);  // perf guard
  if (count == 0) return;
  const double each_area = filler_total / static_cast<double>(count);
  const double w = each_area / side_h;

  Rng rng(config_.seed);
  for (std::size_t i = 0; i < count; ++i) {
    elem_w_.push_back(w);
    elem_h_.push_back(side_h);
    elem_pad_.push_back(0.0);
    xu_.push_back(rng.uniform(design_.die.xlo + w, design_.die.xhi - w));
    yu_.push_back(rng.uniform(design_.die.ylo + side_h, design_.die.yhi - side_h));
  }
  PUFFER_LOG_DEBUG(kTag, "added %zu fillers (%.1f area each)", count, each_area);
}

void EPlaceEngine::rasterize_fixed() {
  // Static charge of macros, scaled by target density so that a uniform
  // target-density sea is an equilibrium; also the free-capacity map used
  // by the overflow metric.
  Map2D<double> macro_area(bins_, bins_);
  for (const Cell& c : design_.cells) {
    if (!c.is_macro()) continue;
    const Rect r = c.rect().clamped(design_.die);
    if (r.empty()) continue;
    const int x0 = std::clamp(static_cast<int>((r.xlo - design_.die.xlo) / bin_w_), 0, bins_ - 1);
    const int x1 = std::clamp(static_cast<int>((r.xhi - design_.die.xlo) / bin_w_), 0, bins_ - 1);
    const int y0 = std::clamp(static_cast<int>((r.ylo - design_.die.ylo) / bin_h_), 0, bins_ - 1);
    const int y1 = std::clamp(static_cast<int>((r.yhi - design_.die.ylo) / bin_h_), 0, bins_ - 1);
    for (int by = y0; by <= y1; ++by) {
      for (int bx = x0; bx <= x1; ++bx) {
        const Rect bin{design_.die.xlo + bx * bin_w_, design_.die.ylo + by * bin_h_,
                       design_.die.xlo + (bx + 1) * bin_w_,
                       design_.die.ylo + (by + 1) * bin_h_};
        macro_area.at(bx, by) += bin.overlap_area(r);
      }
    }
  }
  const double bin_area = bin_w_ * bin_h_;
  for (int by = 0; by < bins_; ++by) {
    for (int bx = 0; bx < bins_; ++bx) {
      const double ma = std::min(macro_area.at(bx, by), bin_area);
      rho_fixed_.at(bx, by) = config_.target_density * ma;
      bin_free_cap_.at(bx, by) = config_.target_density * (bin_area - ma);
    }
  }
}

void EPlaceEngine::rasterize(const std::vector<double>& x,
                             const std::vector<double>& y) {
  if (config_.legacy_kernels) {
    rasterize_legacy(x, y);
  } else {
    rasterize_soa(x, y);
  }
}

void EPlaceEngine::rasterize_soa(const std::vector<double>& x,
                                 const std::vector<double>& y) {
  rho_move_.fill(0.0);
  rho_real_.fill(0.0);
  const double die_x = design_.die.xlo;
  const double die_y = design_.die.ylo;
  const std::size_t n = elem_w_.size();

  // Bucket pass: bin-index ranges per element, then a counting sort of
  // the elements into the row bands they overlap (ascending element
  // order within each band, the serial scatter order).
  std::fill(band_start_.begin(), band_start_.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double xlo = x[i] - ras_hw_[i], xhi = x[i] + ras_hw_[i];
    const double ylo = y[i] - ras_hh_[i], yhi = y[i] + ras_hh_[i];
    const int bx0 = std::clamp(static_cast<int>((xlo - die_x) / bin_w_), 0, bins_ - 1);
    const int bx1 = std::clamp(static_cast<int>((xhi - die_x) / bin_w_), 0, bins_ - 1);
    const int by0 = std::clamp(static_cast<int>((ylo - die_y) / bin_h_), 0, bins_ - 1);
    const int by1 = std::clamp(static_cast<int>((yhi - die_y) / bin_h_), 0, bins_ - 1);
    ebx0_[i] = bx0;
    ebx1_[i] = bx1;
    eby0_[i] = by0;
    eby1_[i] = by1;
    const int b0 = band_of_row_[static_cast<std::size_t>(by0)];
    const int b1 = band_of_row_[static_cast<std::size_t>(by1)];
    for (int b = b0; b <= b1; ++b) {
      ++band_start_[static_cast<std::size_t>(b) + 1];
    }
  }
  for (int b = 0; b < nbands_; ++b) {
    band_start_[static_cast<std::size_t>(b) + 1] +=
        band_start_[static_cast<std::size_t>(b)];
    band_fill_[static_cast<std::size_t>(b)] =
        band_start_[static_cast<std::size_t>(b)];
  }
  band_elems_.resize(static_cast<std::size_t>(band_start_.back()));
  for (std::size_t i = 0; i < n; ++i) {
    const int b0 = band_of_row_[static_cast<std::size_t>(eby0_[i])];
    const int b1 = band_of_row_[static_cast<std::size_t>(eby1_[i])];
    for (int b = b0; b <= b1; ++b) {
      band_elems_[static_cast<std::size_t>(band_fill_[static_cast<std::size_t>(b)]++)] =
          static_cast<std::int32_t>(i);
    }
  }

  // Scatter pass: band b adds its bucket's elements in ascending order,
  // restricted to its own bin rows -- the same per-bin addition order as
  // a serial full scan, independent of the worker count.
  par::parallel_for(
      0, bins_, std::max(1, bins_ / 8),
      [&](std::int64_t band_lo, std::int64_t band_hi_excl, int c) {
        const int lo = static_cast<int>(band_lo);
        const int hi = static_cast<int>(band_hi_excl) - 1;
        const std::int64_t e0 = band_start_[static_cast<std::size_t>(c)];
        const std::int64_t e1 = band_start_[static_cast<std::size_t>(c) + 1];
        for (std::int64_t k = e0; k < e1; ++k) {
          const std::size_t i =
              static_cast<std::size_t>(band_elems_[static_cast<std::size_t>(k)]);
          const double scale = ras_scale_[i];
          const double xlo = x[i] - ras_hw_[i], xhi = x[i] + ras_hw_[i];
          const double ylo = y[i] - ras_hh_[i], yhi = y[i] + ras_hh_[i];
          const int bx0 = ebx0_[i], bx1 = ebx1_[i];
          const int by0 = std::max(lo, static_cast<int>(eby0_[i]));
          const int by1 = std::min(hi, static_cast<int>(eby1_[i]));
          const bool filler = i >= num_movable_;
          for (int by = by0; by <= by1; ++by) {
            const double b_ylo = die_y + by * bin_h_;
            const double oy = std::min(yhi, b_ylo + bin_h_) - std::max(ylo, b_ylo);
            if (oy <= 0.0) continue;
            for (int bx = bx0; bx <= bx1; ++bx) {
              const double b_xlo = die_x + bx * bin_w_;
              const double ox = std::min(xhi, b_xlo + bin_w_) - std::max(xlo, b_xlo);
              if (ox <= 0.0) continue;
              const double a = ox * oy * scale;
              rho_move_.at(bx, by) += a;
              if (!filler) rho_real_.at(bx, by) += a;
            }
          }
        }
      },
      8);
}

void EPlaceEngine::rasterize_legacy(const std::vector<double>& x,
                                    const std::vector<double>& y) {
  rho_move_.fill(0.0);
  rho_real_.fill(0.0);
  const double die_x = design_.die.xlo;
  const double die_y = design_.die.ylo;
  // Row-banded scatter: every chunk scans all elements but writes only
  // the bin rows it owns, so per-bin addition order equals the serial
  // element order and the result is worker-count independent.
  par::parallel_for(
      0, bins_, std::max(1, bins_ / 8),
      [&](std::int64_t band_lo, std::int64_t band_hi_excl, int) {
        const int lo = static_cast<int>(band_lo);
        const int hi = static_cast<int>(band_hi_excl) - 1;
        for (std::size_t i = 0; i < elem_w_.size(); ++i) {
          double w = elem_w_[i] + elem_pad_[i];
          double h = elem_h_[i];
          double scale = 1.0;
          if (w < bin_w_) {
            scale *= w / bin_w_;
            w = bin_w_;
          }
          if (h < bin_h_) {
            scale *= h / bin_h_;
            h = bin_h_;
          }
          const double xlo = x[i] - w * 0.5, xhi = x[i] + w * 0.5;
          const double ylo = y[i] - h * 0.5, yhi = y[i] + h * 0.5;
          const int bx0 = std::clamp(static_cast<int>((xlo - die_x) / bin_w_), 0, bins_ - 1);
          const int bx1 = std::clamp(static_cast<int>((xhi - die_x) / bin_w_), 0, bins_ - 1);
          const int by0 = std::max(
              lo, std::clamp(static_cast<int>((ylo - die_y) / bin_h_), 0, bins_ - 1));
          const int by1 = std::min(
              hi, std::clamp(static_cast<int>((yhi - die_y) / bin_h_), 0, bins_ - 1));
          const bool filler = i >= num_movable_;
          for (int by = by0; by <= by1; ++by) {
            const double b_ylo = die_y + by * bin_h_;
            const double oy = std::min(yhi, b_ylo + bin_h_) - std::max(ylo, b_ylo);
            if (oy <= 0.0) continue;
            for (int bx = bx0; bx <= bx1; ++bx) {
              const double b_xlo = die_x + bx * bin_w_;
              const double ox = std::min(xhi, b_xlo + bin_w_) - std::max(xlo, b_xlo);
              if (ox <= 0.0) continue;
              const double a = ox * oy * scale;
              rho_move_.at(bx, by) += a;
              if (!filler) rho_real_.at(bx, by) += a;
            }
          }
        }
      },
      8);
}

const Map2D<double>& EPlaceEngine::rasterize_probe(
    const std::vector<double>& x, const std::vector<double>& y) {
  rasterize(x, y);
  return rho_move_;
}

double EPlaceEngine::gamma() const {
  // WA smoothing annealed with overflow: wide basin early, sharp late.
  const double t = clamp(overflow_, 0.0, 1.0);
  return bin_w_ * (0.5 + 7.5 * t);
}

void EPlaceEngine::gradient(const std::vector<double>& x,
                            const std::vector<double>& y,
                            std::vector<double>& gx, std::vector<double>& gy) {
  Timer t;
  // Wirelength part (movables only; the SoA gradient ignores the filler
  // entries past the movable count, so x/y pass through uncopied).
  wirelength_.evaluate(x, y, gamma(), gwx_, gwy_);
  // The SoA kernel derives the exact HPWL from pass A's per-net min/max;
  // the legacy path recomputes it the way the retired engine did.
  hpwl_ = config_.legacy_kernels ? wirelength_.hpwl(x, y)
                                 : wirelength_.last_hpwl();
  times_.wirelength_s += t.elapsed_seconds();
  t.reset();

  // Density part.
  rasterize(x, y);
  // Overflow metric from real movables vs free capacity (chunk-ordered
  // fold, so the total is worker-count independent).
  const double over = par::parallel_reduce(
      0, static_cast<std::int64_t>(rho_real_.raw().size()), 4096, 0.0,
      [&](std::int64_t b, std::int64_t e) {
        double s = 0.0;
        for (std::int64_t i = b; i < e; ++i) {
          const std::size_t si = static_cast<std::size_t>(i);
          s += std::max(0.0, rho_real_.raw()[si] - bin_free_cap_.raw()[si]);
        }
        return s;
      });
  overflow_ = over / total_real_area_;

  simd::add(rho_move_.raw().data(), rho_fixed_.raw().data(),
            rho_total_.raw().data(), rho_total_.raw().size());
  times_.density_s += t.elapsed_seconds();
  t.reset();
  es_->solve(rho_total_);
  times_.poisson_s += t.elapsed_seconds();
  t.reset();

  if (!initialized_) {
    // lambda0 = |grad W|_1 / |q xi|_1 so both terms start balanced.
    double wl_l1 = 0.0, d_l1 = 0.0;
    for (std::size_t i = 0; i < num_movable_; ++i) {
      wl_l1 += std::abs(gwx_[i]) + std::abs(gwy_[i]);
    }
    for (std::size_t i = 0; i < elem_w_.size(); ++i) {
      const int bx = std::clamp(static_cast<int>((x[i] - design_.die.xlo) / bin_w_), 0, bins_ - 1);
      const int by = std::clamp(static_cast<int>((y[i] - design_.die.ylo) / bin_h_), 0, bins_ - 1);
      const double q = elem_area(i);
      d_l1 += q * (std::abs(es_->field_x().at(bx, by)) +
                   std::abs(es_->field_y().at(bx, by)));
    }
    lambda_ = d_l1 > 0.0 ? wl_l1 / d_l1 : 1.0;
    initialized_ = true;
    PUFFER_LOG_DEBUG(kTag, "lambda0 = %.4g", lambda_);
  }

  const std::size_t n_elems = elem_w_.size();
  gx.resize(n_elems);
  gy.resize(n_elems);
  wl_grad_l1_ = par::parallel_reduce(
      0, static_cast<std::int64_t>(num_movable_), 4096, 0.0,
      [&](std::int64_t b, std::int64_t e) {
        double s = 0.0;
        for (std::int64_t i = b; i < e; ++i) {
          s += std::abs(gwx_[static_cast<std::size_t>(i)]) +
               std::abs(gwy_[static_cast<std::size_t>(i)]);
        }
        return s;
      });
  // Gradient assembly: each chunk writes its own gx/gy slice and a
  // per-chunk density-L1 partial, folded in chunk order below.
  density_grad_l1_ = par::parallel_reduce(
      0, static_cast<std::int64_t>(n_elems), 2048, 0.0,
      [&](std::int64_t b, std::int64_t e) {
        double d_l1 = 0.0;
        for (std::int64_t ii = b; ii < e; ++ii) {
          const std::size_t i = static_cast<std::size_t>(ii);
          const int bx = std::clamp(static_cast<int>((x[i] - design_.die.xlo) / bin_w_), 0, bins_ - 1);
          const int by = std::clamp(static_cast<int>((y[i] - design_.die.ylo) / bin_h_), 0, bins_ - 1);
          const double q = elem_area(i);
          // dD/dx = -q * xi_x (field points away from charge
          // accumulations).
          double dx = -lambda_ * q * es_->field_x().at(bx, by);
          double dy = -lambda_ * q * es_->field_y().at(bx, by);
          d_l1 += std::abs(dx) + std::abs(dy);
          double pins = 0.0;
          if (i < num_movable_) {
            dx += gwx_[i];
            dy += gwy_[i];
            pins = soa_->pin_count[i];
          }
          const double precond = std::max(1.0, pins + lambda_ * q);
          gx[i] = dx / precond;
          gy[i] = dy / precond;
        }
        return d_l1;
      });
  times_.assemble_s += t.elapsed_seconds();
  ++times_.gradient_evals;
}

void EPlaceEngine::clamp_positions(std::vector<double>& x,
                                   std::vector<double>& y) const {
  simd::clamp_to(x.data(), xlo_b_.data(), xhi_b_.data(), x.size());
  simd::clamp_to(y.data(), ylo_b_.data(), yhi_b_.data(), y.size());
}

bool EPlaceEngine::step() {
  if (iter_ >= config_.max_iters || converged_) return false;
  Timer tstep;
  const auto grad_time = [this] {
    return times_.wirelength_s + times_.density_s + times_.poisson_s +
           times_.assemble_s;
  };
  const double grad_before = grad_time();
  const std::size_t n = elem_w_.size();

  if (iter_ == 0 && gxv_.empty()) {
    gradient(xv_, yv_, gxv_, gyv_);
    // Initial step: largest preconditioned gradient moves one bin.
    double gmax = 1e-12;
    for (std::size_t i = 0; i < n; ++i) {
      gmax = std::max(gmax, std::max(std::abs(gxv_[i]), std::abs(gyv_[i])));
    }
    step_ = bin_w_ / gmax;
  }

  const double hpwl_prev = hpwl_;

  // Backtracking on the Lipschitz estimate.
  xu_new_.resize(n);
  yu_new_.resize(n);
  double alpha = step_ * 1.1;  // allow mild growth between iterations
  for (int bt = 0; bt < 2; ++bt) {
    simd::sub_scaled(xv_.data(), gxv_.data(), alpha, xu_new_.data(), n);
    simd::sub_scaled(yv_.data(), gyv_.data(), alpha, yu_new_.data(), n);
    clamp_positions(xu_new_, yu_new_);
    gradient(xu_new_, yu_new_, gxu_, gyu_);
    double dp = 0.0, dg = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double px = xu_new_[i] - xv_[i], py = yu_new_[i] - yv_[i];
      const double qx = gxu_[i] - gxv_[i], qy = gyu_[i] - gyv_[i];
      dp += px * px + py * py;
      dg += qx * qx + qy * qy;
    }
    const double lip = std::sqrt(dp / std::max(dg, 1e-30));
    if (alpha <= lip * 0.98 || bt == 1) {
      if (alpha > lip) alpha = lip;
      break;
    }
    alpha = lip;
  }
  step_ = alpha;

  // Nesterov extrapolation.
  const double a_next = (1.0 + std::sqrt(4.0 * ak_ * ak_ + 1.0)) * 0.5;
  const double coef = (ak_ - 1.0) / a_next;
  xv_new_.resize(n);
  yv_new_.resize(n);
  simd::extrapolate(xu_new_.data(), xu_.data(), coef, xv_new_.data(), n);
  simd::extrapolate(yu_new_.data(), yu_.data(), coef, yv_new_.data(), n);
  clamp_positions(xv_new_, yv_new_);

  xu_.swap(xu_new_);
  yu_.swap(yu_new_);
  xv_.swap(xv_new_);
  yv_.swap(yv_new_);
  ak_ = a_next;
  gradient(xv_, yv_, gxv_, gyv_);

  // Lambda schedule, steered by the HPWL delta over this iteration.
  // Monotone non-decreasing: a large HPWL jump pauses the growth (mu -> 1)
  // so wirelength can recover, but lambda never shrinks -- this guarantees
  // the density term eventually dominates and the placement spreads.
  if (hpwl0_ <= 0.0) hpwl0_ = std::max(hpwl_, 1.0);
  const double ref = std::max(config_.hpwl_ref_frac * hpwl0_, 1.0);
  const double delta = hpwl_ - hpwl_prev;
  double mu = std::pow(config_.mu_max, 1.0 - delta / ref);
  mu = clamp(mu, 1.0, config_.mu_max);
  // Two-phase schedule: lambda grows monotonically while the placement
  // spreads, then latches permanently once the overflow first drops below
  // the freeze threshold. Past that point the density weight is strong
  // enough to hold the spread (and to respond to padding), and further
  // growth would only trade wirelength for nothing.
  if (overflow_ < config_.lambda_freeze_overflow) lambda_frozen_ = true;
  if (lambda_frozen_) mu = 1.0;
  lambda_ *= mu;

  ++iter_;
  if (overflow_ < best_overflow_ - 1e-3) {
    best_overflow_ = overflow_;
    stall_ = 0;
  } else if (++stall_ >= 100) {
    converged_ = true;
    PUFFER_LOG_DEBUG(kTag, "converged: overflow plateau at %.4f (iter %d)",
                     overflow_, iter_);
  }
  if (iter_ % 50 == 0) {
    PUFFER_LOG_DEBUG(kTag, "iter %d overflow %.4f hpwl %.4g lambda %.3g",
                     iter_, overflow_, hpwl_, lambda_);
  }
  ++times_.iterations;
  times_.nesterov_s += tstep.elapsed_seconds() - (grad_time() - grad_before);
  return true;
}

double EPlaceEngine::run_to_overflow(double overflow_target) {
  // Keep pool workers spinning between the back-to-back kernels of the
  // Nesterov loop (see KeepWarmScope; no effect on results).
  par::KeepWarmScope warm;
  // Always take at least one step so callers make progress even when the
  // initial (clustered) state momentarily reads as low overflow. The
  // engine's converged() plateau guard stops the loop when the target is
  // unreachable at this bin granularity (continuing would only grow
  // lambda and inflate wirelength).
  do {
    if (!step()) break;
  } while (overflow_ > overflow_target);
  sync_to_design();
  return overflow_;
}

void EPlaceEngine::sync_to_design() {
  // Commit through the mirror: solver centers -> SoA -> Design.
  std::copy(xu_.begin(), xu_.begin() + static_cast<std::ptrdiff_t>(num_movable_),
            soa_->cx.begin());
  std::copy(yu_.begin(), yu_.begin() + static_cast<std::ptrdiff_t>(num_movable_),
            soa_->cy.begin());
  soa_->push_positions(design_);
}

}  // namespace puffer
