#include "gp/soa.h"

#include <algorithm>
#include <cstring>

#include "common/parallel.h"

namespace puffer {

void GpSoA::build(const Design& design) {
  const std::size_t n_cells = design.cells.size();
  cell_ids.clear();
  ordinal_of_cell.assign(n_cells, -1);
  for (CellId c = 0; c < static_cast<CellId>(n_cells); ++c) {
    if (design.cells[static_cast<std::size_t>(c)].movable()) {
      ordinal_of_cell[static_cast<std::size_t>(c)] =
          static_cast<std::int32_t>(cell_ids.size());
      cell_ids.push_back(c);
    }
  }
  const std::size_t n_mov = cell_ids.size();
  cw.resize(n_mov);
  chh.resize(n_mov);
  for (std::size_t i = 0; i < n_mov; ++i) {
    const Cell& c = design.cells[static_cast<std::size_t>(cell_ids[i])];
    cw[i] = c.width;
    chh[i] = c.height;
  }
  pin_count.assign(n_mov, 0.0);

  // Net-major slot CSR over nets of degree >= 2, in design net order --
  // ascending slot order is the serial net-walk order of the scalar
  // kernels, which the gradient gather replays.
  net_start.clear();
  net_weight.clear();
  pin_ord.clear();
  pin_ox.clear();
  pin_oy.clear();
  slot_net.clear();
  net_start.push_back(0);
  for (const Net& net : design.nets) {
    if (net.pins.size() < 2) continue;
    const std::int32_t ni = static_cast<std::int32_t>(net_weight.size());
    net_weight.push_back(net.weight);
    for (PinId pid : net.pins) {
      const Pin& pin = design.pins[static_cast<std::size_t>(pid)];
      const Cell& cell = design.cells[static_cast<std::size_t>(pin.cell)];
      const std::int32_t ord = ordinal_of_cell[static_cast<std::size_t>(pin.cell)];
      pin_ord.push_back(ord);
      if (ord >= 0) {
        // Offset from the cell center: pins ride with the center.
        pin_ox.push_back(pin.dx - cell.width * 0.5);
        pin_oy.push_back(pin.dy - cell.height * 0.5);
        pin_count[static_cast<std::size_t>(ord)] += 1.0;
      } else {
        pin_ox.push_back(cell.x + pin.dx);
        pin_oy.push_back(cell.y + pin.dy);
      }
      slot_net.push_back(ni);
    }
    net_start.push_back(static_cast<std::int64_t>(pin_ord.size()));
  }

  // Fixed chunk id per net (worker-count independent by construction).
  const std::int64_t n_nets = static_cast<std::int64_t>(net_weight.size());
  net_chunks_ = par::chunk_count(n_nets, kNetGrain, kMaxNetChunks);
  net_chunk.assign(static_cast<std::size_t>(n_nets), 0);
  for (int c = 0; c < net_chunks_; ++c) {
    const auto [b, e] = par::chunk_range(n_nets, net_chunks_, c);
    for (std::int64_t ni = b; ni < e; ++ni) {
      net_chunk[static_cast<std::size_t>(ni)] = c;
    }
  }
  slot_chunk.resize(slot_net.size());
  for (std::size_t s = 0; s < slot_net.size(); ++s) {
    slot_chunk[s] = net_chunk[static_cast<std::size_t>(slot_net[s])];
  }
  max_degree_ = 0;
  for (std::size_t ni = 0; ni + 1 < net_start.size(); ++ni) {
    max_degree_ = std::max(max_degree_, net_start[ni + 1] - net_start[ni]);
  }

  // Transposed CSR (cell -> slots) by counting sort; walking slots in
  // ascending order keeps each cell's slot list ascending too.
  cell_start.assign(n_mov + 1, 0);
  for (std::int32_t ord : pin_ord) {
    if (ord >= 0) ++cell_start[static_cast<std::size_t>(ord) + 1];
  }
  for (std::size_t i = 0; i < n_mov; ++i) cell_start[i + 1] += cell_start[i];
  cell_slots.assign(static_cast<std::size_t>(cell_start[n_mov]), 0);
  std::vector<std::int64_t> fill(cell_start.begin(), cell_start.end() - 1);
  for (std::size_t s = 0; s < pin_ord.size(); ++s) {
    const std::int32_t ord = pin_ord[s];
    if (ord < 0) continue;
    cell_slots[static_cast<std::size_t>(fill[static_cast<std::size_t>(ord)]++)] =
        static_cast<std::int64_t>(s);
  }

  pull_positions(design);
}

void GpSoA::pull_positions(const Design& design) {
  const std::size_t n_mov = cell_ids.size();
  cx.resize(n_mov);
  cy.resize(n_mov);
  for (std::size_t i = 0; i < n_mov; ++i) {
    const Cell& c = design.cells[static_cast<std::size_t>(cell_ids[i])];
    cx[i] = c.x + c.width * 0.5;
    cy[i] = c.y + c.height * 0.5;
  }
}

void GpSoA::push_positions(Design& design) const {
  for (std::size_t i = 0; i < cell_ids.size(); ++i) {
    Cell& c = design.cells[static_cast<std::size_t>(cell_ids[i])];
    c.x = cx[i] - c.width * 0.5;
    c.y = cy[i] - c.height * 0.5;
  }
}

bool GpSoA::matches(const Design& design) const {
  if (cx.size() != cell_ids.size() || cy.size() != cell_ids.size()) {
    return false;
  }
  for (std::size_t i = 0; i < cell_ids.size(); ++i) {
    const Cell& c = design.cells[static_cast<std::size_t>(cell_ids[i])];
    const double dx = c.x + c.width * 0.5;
    const double dy = c.y + c.height * 0.5;
    if (std::memcmp(&dx, &cx[i], sizeof(double)) != 0 ||
        std::memcmp(&dy, &cy[i], sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

namespace {
std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

std::uint64_t GpSoA::position_checksum() const {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(cx.data(), cx.size() * sizeof(double), h);
  h = fnv1a(cy.data(), cy.size() * sizeof(double), h);
  return h;
}

}  // namespace puffer
