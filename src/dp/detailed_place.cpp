#include "dp/detailed_place.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/logger.h"
#include "common/parallel.h"
#include "common/timer.h"

namespace puffer {
namespace {

constexpr const char* kTag = "dp";

// HPWL over the union of nets touching cells a/b, with the two cells'
// origins overridden. With the current origins this is the exact "before"
// value; with trial origins it evaluates a move without mutating the
// design — which is what lets candidate evaluation run concurrently
// against the frozen pass-start state.
double pair_hpwl(const Design& d, CellId a, Point pa, CellId b, Point pb) {
  double sum = 0.0;
  auto eval_net = [&](NetId nid) {
    const Net& net = d.nets[static_cast<std::size_t>(nid)];
    if (net.pins.size() < 2) return;
    double xlo = std::numeric_limits<double>::max();
    double xhi = std::numeric_limits<double>::lowest();
    double ylo = xlo, yhi = xhi;
    for (PinId pid : net.pins) {
      const Pin& p = d.pins[static_cast<std::size_t>(pid)];
      Point origin;
      if (p.cell == a) {
        origin = pa;
      } else if (p.cell == b) {
        origin = pb;
      } else {
        const Cell& c = d.cells[static_cast<std::size_t>(p.cell)];
        origin = {c.x, c.y};
      }
      xlo = std::min(xlo, origin.x + p.dx);
      xhi = std::max(xhi, origin.x + p.dx);
      ylo = std::min(ylo, origin.y + p.dy);
      yhi = std::max(yhi, origin.y + p.dy);
    }
    sum += (xhi - xlo) + (yhi - ylo);
  };
  const Cell& ca = d.cells[static_cast<std::size_t>(a)];
  const Cell& cb = d.cells[static_cast<std::size_t>(b)];
  for (PinId pid : ca.pins) eval_net(d.pins[static_cast<std::size_t>(pid)].net);
  for (PinId pid : cb.pins) {
    const NetId nid = d.pins[static_cast<std::size_t>(pid)].net;
    // Skip nets already counted through a (union, not multiset).
    bool shared = false;
    for (PinId apid : ca.pins) {
      if (d.pins[static_cast<std::size_t>(apid)].net == nid) {
        shared = true;
        break;
      }
    }
    if (!shared) eval_net(nid);
  }
  return sum;
}

// Weighted median of the other pins on this cell's nets: the classic
// optimal-region center for a single movable cell.
Point optimal_position(const Design& d, CellId cid) {
  std::vector<double> xs, ys;
  const Cell& cell = d.cells[static_cast<std::size_t>(cid)];
  for (PinId pid : cell.pins) {
    const Net& net = d.nets[static_cast<std::size_t>(
        d.pins[static_cast<std::size_t>(pid)].net)];
    for (PinId other : net.pins) {
      if (d.pins[static_cast<std::size_t>(other)].cell == cid) continue;
      const Point p = d.pin_position(other);
      xs.push_back(p.x);
      ys.push_back(p.y);
    }
  }
  if (xs.empty()) return cell.center();
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  std::nth_element(ys.begin(), ys.begin() + static_cast<std::ptrdiff_t>(mid),
                   ys.end());
  return {xs[mid], ys[mid]};
}

struct RowOrder {
  double y = 0.0;
  std::vector<CellId> cells;  // sorted by (x, id)
};

std::vector<RowOrder> build_rows(const Design& d) {
  std::map<long long, RowOrder> rows;  // key: quantized y
  for (CellId c = 0; c < static_cast<CellId>(d.cells.size()); ++c) {
    const Cell& cell = d.cells[static_cast<std::size_t>(c)];
    if (!cell.movable()) continue;
    const long long key = std::llround(cell.y * 16.0);
    RowOrder& row = rows[key];
    row.y = cell.y;
    row.cells.push_back(c);
  }
  std::vector<RowOrder> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) {
    std::sort(row.cells.begin(), row.cells.end(), [&](CellId a, CellId b) {
      const double ax = d.cells[static_cast<std::size_t>(a)].x;
      const double bx = d.cells[static_cast<std::size_t>(b)].x;
      if (ax != bx) return ax < bx;
      return a < b;
    });
    out.push_back(std::move(row));
  }
  return out;
}

// A candidate move: both cells take explicit new origins. Evaluated
// concurrently against the frozen pass-start state; committed serially.
struct Move {
  CellId a = kInvalidId, b = kInvalidId;
  Point na, nb;
  double frozen_delta = 0.0;
  bool viable = false;
};

// Active-set bookkeeping: a committed move re-arms every cell sharing a
// net with the moved pair for the next pass. The reorder phase skips
// pairs with no re-armed cell: a pair's delta depends only on the two
// cells and their net neighbours, all of which sit exactly where they
// sat when the pair was last rejected, so the skip is lossless there.
// (The swap phase cannot use this filter — see swap_phase.)
void arm_neighbourhood(const Design& d, CellId c,
                       std::vector<std::uint32_t>& active,
                       std::uint32_t next_pass) {
  for (PinId pid : d.cells[static_cast<std::size_t>(c)].pins) {
    const Net& net =
        d.nets[static_cast<std::size_t>(d.pins[static_cast<std::size_t>(pid)].net)];
    for (PinId q : net.pins) {
      const std::size_t cc =
          static_cast<std::size_t>(d.pins[static_cast<std::size_t>(q)].cell);
      active[cc] = std::max(active[cc], next_pass);
    }
  }
}

// Batched commit: apply moves in candidate order, skipping any whose
// cells were already touched this phase, and re-admitting against the
// *live* state (strictly improving, the router's batched-RRR rule).
int commit_moves(Design& d, const std::vector<Move>& moves,
                 std::vector<std::uint32_t>& touched, std::uint32_t epoch,
                 std::vector<std::uint32_t>& active, std::uint32_t next_pass,
                 int& evaluated) {
  int accepted = 0;
  for (const Move& m : moves) {
    if (!m.viable) continue;
    ++evaluated;
    const std::size_t ai = static_cast<std::size_t>(m.a);
    const std::size_t bi = static_cast<std::size_t>(m.b);
    if (touched[ai] == epoch || touched[bi] == epoch) continue;
    Cell& ca = d.cells[ai];
    Cell& cb = d.cells[bi];
    // Shared-net third cells may have moved earlier in this commit loop,
    // so the admission test re-evaluates against live positions.
    const double before =
        pair_hpwl(d, m.a, {ca.x, ca.y}, m.b, {cb.x, cb.y});
    const double after = pair_hpwl(d, m.a, m.na, m.b, m.nb);
    if (after + 1e-9 < before) {
      ca.x = m.na.x;
      ca.y = m.na.y;
      cb.x = m.nb.x;
      cb.y = m.nb.y;
      touched[ai] = epoch;
      touched[bi] = epoch;
      arm_neighbourhood(d, m.a, active, next_pass);
      arm_neighbourhood(d, m.b, active, next_pass);
      ++accepted;
    }
  }
  return accepted;
}

// Adjacent-pair reordering, batched: candidates are every x-adjacent
// pair in the frozen row order; each evaluates feasibility (macro-free
// envelope, no overlap after the order swap) and the frozen HPWL delta
// concurrently, then commits serially left-to-right.
int reorder_phase(Design& d, const std::vector<Rect>& macros,
                  std::vector<std::uint32_t>& touched, std::uint32_t epoch,
                  std::vector<std::uint32_t>& active, std::uint32_t pass,
                  int& evaluated) {
  const std::vector<RowOrder> rows = build_rows(d);
  std::vector<std::pair<CellId, CellId>> pairs;
  for (const RowOrder& row : rows) {
    for (std::size_t i = 0; i + 1 < row.cells.size(); ++i) {
      const CellId a = row.cells[i];
      const CellId b = row.cells[i + 1];
      if (pass > 0 && active[static_cast<std::size_t>(a)] != pass &&
          active[static_cast<std::size_t>(b)] != pass) {
        continue;  // delta unchanged since last rejection
      }
      pairs.emplace_back(a, b);
    }
  }
  std::vector<Move> moves(pairs.size());
  par::parallel_for(
      0, static_cast<std::int64_t>(pairs.size()), 16,
      [&](std::int64_t lo, std::int64_t hi, int) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto [a, b] = pairs[static_cast<std::size_t>(i)];
          const Cell& ca = d.cells[static_cast<std::size_t>(a)];
          const Cell& cb = d.cells[static_cast<std::size_t>(b)];
          // b takes the pair's left edge; a goes flush to the right
          // edge, so the envelope (and the air inside it) is preserved.
          const double span_end = cb.x + cb.width;
          const double nax = span_end - ca.width;
          Move m;
          m.a = a;
          m.b = b;
          m.na = {nax, ca.y};
          m.nb = {ca.x, cb.y};
          if (m.nb.x + cb.width > m.na.x + 1e-9) continue;  // would overlap
          const Rect envelope{ca.x, ca.y, span_end, ca.y + ca.height};
          bool blocked = false;
          for (const Rect& mac : macros) {
            if (envelope.overlap_area(mac) > 0.0) {
              blocked = true;
              break;
            }
          }
          if (blocked) continue;
          const double before =
              pair_hpwl(d, a, {ca.x, ca.y}, b, {cb.x, cb.y});
          const double after = pair_hpwl(d, a, m.na, b, m.nb);
          m.frozen_delta = after - before;
          m.viable = m.frozen_delta < -1e-9;
          moves[static_cast<std::size_t>(i)] = m;
        }
      });
  return commit_moves(d, moves, touched, epoch, active, pass + 1, evaluated);
}

// Per-size-bucket spatial hash over the frozen cell centers: the
// nearest-candidate query examines only the 3x3 bin neighbourhood of
// the target (bin edge = the search window, so any candidate within the
// window lies in an adjacent bin) instead of the seed's O(bucket) scan
// per query — the dominant cost of the seed's swap pass.
struct BucketGrid {
  double x0 = 0.0, y0 = 0.0, bin = 1.0;
  int nx = 1, ny = 1;
  std::vector<std::vector<CellId>> bins;  // cells in id order per bin

  void build(const Design& d, const std::vector<CellId>& bucket,
             double bin_edge) {
    x0 = d.die.xlo;
    y0 = d.die.ylo;
    bin = std::max(bin_edge, 1e-9);
    nx = std::max(1, static_cast<int>((d.die.xhi - d.die.xlo) / bin) + 1);
    ny = std::max(1, static_cast<int>((d.die.yhi - d.die.ylo) / bin) + 1);
    bins.assign(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny),
                {});
    for (CellId c : bucket) {
      const Point p = d.cells[static_cast<std::size_t>(c)].center();
      bins[static_cast<std::size_t>(index(p))].push_back(c);
    }
  }
  int coord(double v, double lo, int n) const {
    const int i = static_cast<int>((v - lo) / bin);
    return std::clamp(i, 0, n - 1);
  }
  int index(Point p) const {
    return coord(p.y, y0, ny) * nx + coord(p.x, x0, nx);
  }
  // Deterministic nearest candidate to `target` with manhattan distance
  // < `radius` (radius <= bin); ties resolve to the lowest cell id.
  CellId nearest(const Design& d, Point target, double radius,
                 CellId exclude) const {
    const int bx = coord(target.x, x0, nx);
    const int by = coord(target.y, y0, ny);
    CellId best = kInvalidId;
    double best_d = radius;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int gx = bx + dx, gy = by + dy;
        if (gx < 0 || gx >= nx || gy < 0 || gy >= ny) continue;
        for (CellId c : bins[static_cast<std::size_t>(gy * nx + gx)]) {
          if (c == exclude) continue;
          const double dist =
              manhattan(d.cells[static_cast<std::size_t>(c)].center(), target);
          if (dist < best_d || (dist == best_d && best != kInvalidId &&
                                c < best)) {
            best_d = dist;
            best = c;
          }
        }
      }
    }
    return best;
  }
};

// Cross-row swaps of identically-sized cells, batched: each cell picks
// the same-size partner nearest its optimal region on the frozen state;
// commits run in cell-id order.
int swap_phase(Design& d, const DetailedPlaceConfig& config,
               std::vector<std::uint32_t>& touched, std::uint32_t epoch,
               std::vector<std::uint32_t>& active, std::uint32_t pass,
               int& evaluated) {
  std::map<std::pair<double, double>, std::vector<CellId>> by_size;
  for (CellId c = 0; c < static_cast<CellId>(d.cells.size()); ++c) {
    const Cell& cell = d.cells[static_cast<std::size_t>(c)];
    if (cell.movable()) by_size[{cell.width, cell.height}].push_back(c);
  }
  const double wx = config.swap_window_rows * d.tech.row_height;
  std::vector<CellId> seeds;
  std::vector<int> seed_grid;
  std::vector<BucketGrid> grids;
  for (const auto& [size, bucket] : by_size) {
    if (bucket.size() < 2) continue;
    grids.emplace_back();
    grids.back().build(d, bucket, wx);
    // No active-set filter here: a seed's partner choice depends on the
    // *positions* of its whole size bucket (via the grid), not only on
    // its net neighbourhood, so skipping net-unarmed seeds would be
    // lossy. The grid already makes each evaluation O(pins + bin).
    for (CellId a : bucket) {
      seeds.push_back(a);
      seed_grid.push_back(static_cast<int>(grids.size()) - 1);
    }
  }
  std::vector<Move> moves(seeds.size());
  par::parallel_for(
      0, static_cast<std::int64_t>(seeds.size()), 8,
      [&](std::int64_t lo, std::int64_t hi, int) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const CellId a = seeds[static_cast<std::size_t>(i)];
          const Cell& ca = d.cells[static_cast<std::size_t>(a)];
          const Point target = optimal_position(d, a);
          if (manhattan(ca.center(), target) < d.tech.row_height) continue;
          const CellId best =
              grids[static_cast<std::size_t>(
                        seed_grid[static_cast<std::size_t>(i)])]
                  .nearest(d, target, wx, a);
          if (best == kInvalidId) continue;
          const Cell& cb = d.cells[static_cast<std::size_t>(best)];
          Move m;
          m.a = a;
          m.b = best;
          m.na = {cb.x, cb.y};  // verbatim position exchange
          m.nb = {ca.x, ca.y};
          const double before =
              pair_hpwl(d, a, {ca.x, ca.y}, best, {cb.x, cb.y});
          const double after = pair_hpwl(d, a, m.na, best, m.nb);
          m.frozen_delta = after - before;
          m.viable = m.frozen_delta < -1e-9;
          moves[static_cast<std::size_t>(i)] = m;
        }
      });
  return commit_moves(d, moves, touched, epoch, active, pass + 1, evaluated);
}

}  // namespace

DetailedPlaceResult detailed_place(Design& design,
                                   const DetailedPlaceConfig& config) {
  DetailedPlaceResult result;
  Timer timer;
  result.hpwl_before = design.total_hpwl();
  std::vector<Rect> macros;
  for (const Cell& c : design.cells) {
    if (c.is_macro()) macros.push_back(c.rect());
  }
  std::vector<std::uint32_t> touched(design.cells.size(), 0);
  std::vector<std::uint32_t> active(design.cells.size(), 0);
  std::uint32_t epoch = 0;
  for (std::uint32_t pass = 0;
       pass < static_cast<std::uint32_t>(config.max_passes); ++pass) {
    int accepted = 0;
    if (config.adjacent_reorder) {
      accepted += reorder_phase(design, macros, touched, ++epoch, active,
                                pass, result.evaluated_moves);
    }
    if (config.cross_row_swaps) {
      accepted += swap_phase(design, config, touched, ++epoch, active, pass,
                             result.evaluated_moves);
    }
    result.accepted_moves += accepted;
    ++result.passes;
    PUFFER_LOG_DEBUG(kTag, "pass %d accepted %d moves", static_cast<int>(pass) + 1, accepted);
    if (accepted == 0) break;
  }
  result.hpwl_after = design.total_hpwl();
  result.time_s = timer.elapsed_seconds();
  return result;
}

}  // namespace puffer
