#include "dp/detailed_place.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "common/logger.h"

namespace puffer {
namespace {

constexpr const char* kTag = "dp";

// Exact HPWL over the union of nets touching any of the given cells.
double nets_hpwl(const Design& d, const std::vector<CellId>& cells) {
  std::set<NetId> nets;
  for (CellId c : cells) {
    for (PinId pid : d.cells[static_cast<std::size_t>(c)].pins) {
      nets.insert(d.pins[static_cast<std::size_t>(pid)].net);
    }
  }
  double sum = 0.0;
  for (NetId n : nets) sum += d.net_hpwl(n);
  return sum;
}

// Weighted median of the other pins on this cell's nets: the classic
// optimal-region center for a single movable cell.
Point optimal_position(const Design& d, CellId cid) {
  std::vector<double> xs, ys;
  const Cell& cell = d.cells[static_cast<std::size_t>(cid)];
  for (PinId pid : cell.pins) {
    const Net& net = d.nets[static_cast<std::size_t>(
        d.pins[static_cast<std::size_t>(pid)].net)];
    for (PinId other : net.pins) {
      if (d.pins[static_cast<std::size_t>(other)].cell == cid) continue;
      const Point p = d.pin_position(other);
      xs.push_back(p.x);
      ys.push_back(p.y);
    }
  }
  if (xs.empty()) return cell.center();
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  std::nth_element(ys.begin(), ys.begin() + static_cast<std::ptrdiff_t>(mid), ys.end());
  return {xs[mid], ys[mid]};
}

struct RowOrder {
  double y = 0.0;
  std::vector<CellId> cells;  // sorted by x
};

std::vector<RowOrder> build_rows(const Design& d) {
  std::map<long long, RowOrder> rows;  // key: quantized y
  for (CellId c = 0; c < static_cast<CellId>(d.cells.size()); ++c) {
    const Cell& cell = d.cells[static_cast<std::size_t>(c)];
    if (!cell.movable()) continue;
    const long long key = std::llround(cell.y * 16.0);
    RowOrder& row = rows[key];
    row.y = cell.y;
    row.cells.push_back(c);
  }
  std::vector<RowOrder> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) {
    std::sort(row.cells.begin(), row.cells.end(), [&](CellId a, CellId b) {
      return d.cells[static_cast<std::size_t>(a)].x <
             d.cells[static_cast<std::size_t>(b)].x;
    });
    out.push_back(std::move(row));
  }
  return out;
}

// Swap the order of two x-adjacent cells inside their combined span; the
// air between/around them is preserved in total (left edge and right edge
// of the pair's envelope stay fixed). Pairs whose envelope crosses a
// fixed blockage (macro) are skipped: cells of different widths would
// otherwise slide onto it.
int reorder_pass(Design& d, std::vector<RowOrder> rows) {
  std::vector<Rect> macros;
  for (const Cell& c : d.cells) {
    if (c.is_macro()) macros.push_back(c.rect());
  }
  int accepted = 0;
  for (RowOrder& row : rows) {
    for (std::size_t i = 0; i + 1 < row.cells.size(); ++i) {
      const CellId a = row.cells[i];
      const CellId b = row.cells[i + 1];
      Cell& ca = d.cells[static_cast<std::size_t>(a)];
      Cell& cb = d.cells[static_cast<std::size_t>(b)];
      const double ax = ca.x, bx = cb.x;
      const double span_end = cb.x + cb.width;
      const Rect envelope{ax, ca.y, span_end, ca.y + ca.height};
      bool blocked = false;
      for (const Rect& m : macros) {
        if (envelope.overlap_area(m) > 0.0) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      const double before = nets_hpwl(d, {a, b});
      // b takes the left edge; a goes flush to the right edge.
      ca.x = span_end - ca.width;
      cb.x = ax;
      // Widths differ, so ensure no overlap inside the pair envelope.
      if (cb.x + cb.width > ca.x + 1e-9) {
        ca.x = ax;
        cb.x = bx;
        continue;
      }
      if (nets_hpwl(d, {a, b}) + 1e-9 < before) {
        ++accepted;
        // Keep the order vector sorted by x so the next pair's envelope
        // is computed against the true left-to-right neighbours.
        std::swap(row.cells[i], row.cells[i + 1]);
      } else {
        ca.x = ax;
        cb.x = bx;
      }
    }
  }
  return accepted;
}

// Swap identically-sized cells when it lowers HPWL: candidates are looked
// up by (width, height) near each cell's optimal region.
int swap_pass(Design& d, const DetailedPlaceConfig& config) {
  // Bucket movable cells by size.
  std::map<std::pair<double, double>, std::vector<CellId>> by_size;
  for (CellId c = 0; c < static_cast<CellId>(d.cells.size()); ++c) {
    const Cell& cell = d.cells[static_cast<std::size_t>(c)];
    if (cell.movable()) by_size[{cell.width, cell.height}].push_back(c);
  }
  const double wx = config.swap_window_rows * d.tech.row_height;
  int accepted = 0;
  for (auto& [size, bucket] : by_size) {
    if (bucket.size() < 2) continue;
    for (CellId a : bucket) {
      const Point target = optimal_position(d, a);
      const Cell& ca = d.cells[static_cast<std::size_t>(a)];
      if (manhattan(ca.center(), target) < d.tech.row_height) continue;
      // Nearest same-size cell to the optimal region.
      CellId best = kInvalidId;
      double best_d = wx;
      for (CellId b : bucket) {
        if (b == a) continue;
        const double dist =
            manhattan(d.cells[static_cast<std::size_t>(b)].center(), target);
        if (dist < best_d) {
          best_d = dist;
          best = b;
        }
      }
      if (best == kInvalidId) continue;
      Cell& cb = d.cells[static_cast<std::size_t>(best)];
      Cell& cc = d.cells[static_cast<std::size_t>(a)];
      const double before = nets_hpwl(d, {a, best});
      std::swap(cc.x, cb.x);
      std::swap(cc.y, cb.y);
      if (nets_hpwl(d, {a, best}) + 1e-9 < before) {
        ++accepted;
      } else {
        std::swap(cc.x, cb.x);
        std::swap(cc.y, cb.y);
      }
    }
  }
  return accepted;
}

}  // namespace

DetailedPlaceResult detailed_place(Design& design,
                                   const DetailedPlaceConfig& config) {
  DetailedPlaceResult result;
  result.hpwl_before = design.total_hpwl();
  for (int pass = 0; pass < config.max_passes; ++pass) {
    int accepted = 0;
    if (config.adjacent_reorder) {
      accepted += reorder_pass(design, build_rows(design));
    }
    if (config.cross_row_swaps) {
      accepted += swap_pass(design, config);
    }
    result.accepted_moves += accepted;
    ++result.passes;
    PUFFER_LOG_DEBUG(kTag, "pass %d accepted %d moves", pass + 1, accepted);
    if (accepted == 0) break;
  }
  result.hpwl_after = design.total_hpwl();
  return result;
}

}  // namespace puffer
