// Detailed placement: legality-preserving wirelength refinement after
// legalization (an extension beyond the paper's flow, which evaluates
// directly after legalization; kept off by default in the Table II
// reproduction and exercised by tests/examples).
//
// Two move classes, both exactly legality-preserving:
//   * adjacent-pair reordering within a row: two neighbouring cells swap
//     order inside their combined span (white space between them is
//     preserved in total, so inherited padding gaps survive);
//   * cross-row swaps of identically-sized cells: positions are exchanged
//     verbatim.
//
// Each pass is batched in the router's snapshot/commit shape: candidate
// moves are generated and scored concurrently against the frozen
// pass-start state, then committed serially in candidate order with
// strictly-improving admission re-checked against the live state (a move
// is skipped when either of its cells was already touched this phase).
// The result is bit-identical for any PUFFER_THREADS value.
#pragma once

#include "netlist/design.h"

namespace puffer {

struct DetailedPlaceConfig {
  int max_passes = 4;
  bool adjacent_reorder = true;
  bool cross_row_swaps = true;
  // Cross-row candidate search window around a cell's optimal position,
  // in row heights / site widths.
  double swap_window_rows = 6.0;
};

struct DetailedPlaceResult {
  int accepted_moves = 0;
  int passes = 0;
  double hpwl_before = 0.0;
  double hpwl_after = 0.0;
  // Stage observability (wired into FlowMetrics / the experiment log).
  int evaluated_moves = 0;  // frozen-viable candidates reaching the commit loop
  double time_s = 0.0;
  double improvement_pct() const {
    return hpwl_before > 0.0
               ? 100.0 * (hpwl_before - hpwl_after) / hpwl_before
               : 0.0;
  }
};

// Refines the (legal) placement in place. Fixed cells never move.
DetailedPlaceResult detailed_place(Design& design,
                                   const DetailedPlaceConfig& config = {});

}  // namespace puffer
