// SVG export of placements and congestion overlays.
//
// Renders the die, rows, macros and standard cells to a standalone SVG
// file; optionally overlays a congestion map as translucent heat tiles.
// Used by the examples and handy when debugging placement pathologies.
#pragma once

#include <string>

#include "grid/map2d.h"
#include "grid/gcell.h"
#include "netlist/design.h"

namespace puffer {

struct SvgOptions {
  double pixels_per_dbu = 0.0;  // 0 = auto (target ~1200 px wide)
  bool draw_rows = true;
  bool draw_cells = true;
  bool draw_macros = true;
  // Highlight padded cells (ids with pad > 0) in a distinct fill.
  const std::vector<double>* pad_by_cell = nullptr;  // indexed by CellId
};

// Writes the placement to `path`. Throws std::runtime_error on I/O error.
void write_placement_svg(const Design& design, const std::string& path,
                         const SvgOptions& options = {});

// Same, with a congestion overlay: `cg` holds signed congestion per Gcell
// of `grid` (positive = overflow, drawn red; negative = slack, not drawn
// unless `show_slack`).
void write_placement_svg(const Design& design, const GcellGrid& grid,
                         const Map2D<double>& cg, const std::string& path,
                         const SvgOptions& options = {});

}  // namespace puffer
