#include "viz/svg.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace puffer {
namespace {

class SvgWriter {
 public:
  SvgWriter(const std::string& path, const Rect& view, double scale)
      : out_(path), view_(view), scale_(scale) {
    if (!out_) throw std::runtime_error("cannot write " + path);
    out_ << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
    out_ << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
         << view.width() * scale_ << "\" height=\"" << view.height() * scale_
         << "\" viewBox=\"0 0 " << view.width() * scale_ << ' '
         << view.height() * scale_ << "\">\n";
    out_ << "<rect width=\"100%\" height=\"100%\" fill=\"#101418\"/>\n";
  }

  ~SvgWriter() { out_ << "</svg>\n"; }

  // SVG y grows downward; flip so the die's origin is bottom-left.
  void rect(const Rect& r, const char* fill, double opacity,
            const char* stroke = nullptr) {
    const double x = (r.xlo - view_.xlo) * scale_;
    const double y = (view_.yhi - r.yhi) * scale_;
    out_ << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\""
         << r.width() * scale_ << "\" height=\"" << r.height() * scale_
         << "\" fill=\"" << fill << "\" fill-opacity=\"" << opacity << '"';
    if (stroke != nullptr) {
      out_ << " stroke=\"" << stroke << "\" stroke-width=\"0.5\"";
    }
    out_ << "/>\n";
  }

 private:
  std::ofstream out_;
  Rect view_;
  double scale_;
};

double auto_scale(const Design& design, const SvgOptions& options) {
  if (options.pixels_per_dbu > 0.0) return options.pixels_per_dbu;
  return 1200.0 / std::max(design.die.width(), 1.0);
}

void draw_design(SvgWriter& svg, const Design& design,
                 const SvgOptions& options) {
  svg.rect(design.die, "#1c2430", 1.0, "#5a6b80");
  if (options.draw_rows) {
    for (const Row& row : design.rows) {
      svg.rect({row.x_lo, row.y, row.x_hi(), row.y + row.height}, "#202b38",
               0.6);
    }
  }
  if (options.draw_cells) {
    for (std::size_t c = 0; c < design.cells.size(); ++c) {
      const Cell& cell = design.cells[c];
      if (!cell.movable()) continue;
      const bool padded = options.pad_by_cell != nullptr &&
                          c < options.pad_by_cell->size() &&
                          (*options.pad_by_cell)[c] > 0.0;
      svg.rect(cell.rect(), padded ? "#ffb454" : "#5ccfe6", 0.85);
    }
  }
  if (options.draw_macros) {
    for (const Cell& cell : design.cells) {
      if (cell.is_macro()) svg.rect(cell.rect(), "#394b61", 1.0, "#8ba2bd");
    }
  }
}

}  // namespace

void write_placement_svg(const Design& design, const std::string& path,
                         const SvgOptions& options) {
  SvgWriter svg(path, design.die, auto_scale(design, options));
  draw_design(svg, design, options);
}

void write_placement_svg(const Design& design, const GcellGrid& grid,
                         const Map2D<double>& cg, const std::string& path,
                         const SvgOptions& options) {
  SvgWriter svg(path, design.die, auto_scale(design, options));
  draw_design(svg, design, options);
  for (int gy = 0; gy < grid.ny(); ++gy) {
    for (int gx = 0; gx < grid.nx(); ++gx) {
      const double v = cg.at(gx, gy);
      if (v <= 0.0) continue;
      const double t = clamp(v, 0.0, 1.0);
      svg.rect(grid.gcell_rect(gx, gy), t > 0.5 ? "#ff3333" : "#ffcc00",
               0.25 + 0.45 * t);
    }
  }
}

}  // namespace puffer
