// Routing-detour-imitation-based congestion estimation (paper SS III-A).
//
// Produces a 2D congestion map from the current (possibly overlapping)
// global-placement state in three steps:
//
//  1. Blockage-aware capacity assessment (grid/capacity.h, Eq. 8).
//  2. Topology-based probabilistic demand: each net is decomposed by the
//     RSMT builder into two-point segments; an "I"-shaped segment adds a
//     unit of demand along its covered Gcells in its direction, an
//     "L"-shaped segment spreads the average demand of the two possible
//     L routes over its bounding box, and a pin penalty captures local
//     nets whose pins share a Gcell.
//  3. Detour-imitating demand expansion: congested I-shaped segments
//     transfer their demand to a nearby parallel row/column with slack.
//     If the moved endpoint is a Steiner point the connecting
//     perpendicular demand is added (a true routing detour); if it is a
//     cell pin, no connector is added, imitating the spreading of the
//     clustered cells themselves.
//
// The estimator retains the per-net RSMT topologies so the feature
// extractor (padding/features.h) can compute the GNN-inspired pin
// congestion on the same trees.
#pragma once

#include <cstdint>
#include <vector>

#include "congestion/demand_ledger.h"
#include "grid/routing_maps.h"
#include "netlist/design.h"
#include "rsmt/rsmt.h"
#include "rsmt/rsmt_cache.h"

namespace puffer {

struct CongestionConfig {
  // Gcell height in standard-cell rows (global-routing granularity).
  double rows_per_gcell = 3.0;
  // Demand (track-equivalents, added to both directions) per pin in a
  // Gcell; models local-net consumption. Strategy parameter.
  double pin_penalty = 0.04;
  // Pin-crowding model: a Gcell has pin-access capacity for roughly
  // pins_per_site pins per placement site; every pin beyond that needs an
  // escape wire, adding pin_crowding/2 track-equivalents to each
  // direction. Off by default here so the estimator keeps the paper's
  // pure topology-demand conservation (the evaluation router enables it;
  // strategy exploration may raise it for padding features too).
  double pins_per_site = 2.0;
  double pin_crowding = 0.0;
  // RSMT topology cache: nets whose quantized pin positions are unchanged
  // since the previous estimate() reuse their tree (see rsmt_cache.h).
  bool enable_rsmt_cache = true;
  double cache_quantum = 1e-3;
  // Detour expansion: search radius in Gcells and on/off switch (the
  // estimation-accuracy ablation toggles this).
  int expand_radius = 4;
  bool enable_detour_expansion = true;
  // A segment is considered congested (triggering expansion) when some
  // Gcell on it exceeds this demand/capacity ratio. Strategy parameter.
  double congested_ratio = 1.0;
  // Incremental estimation (estimate_incremental): maintain the per-net
  // demand ledger between calls so only dirty nets are re-accumulated.
  // Requires the RSMT cache; with the cache disabled every call falls
  // back to a full estimate.
  bool enable_incremental = true;
  // Every Nth estimate_incremental() call rebuilds the ledger from
  // scratch (0 = rebuild only on the first call / after invalidation).
  int full_rebuild_interval = 16;
  // On rebuild rounds, additionally run the incremental path and check it
  // is bit-identical to the from-scratch result; a mismatch increments
  // IncrementalStats::drift_count and the fresh result is adopted.
  bool verify_rebuild = true;
};

// Dirty-Gcell delta of one estimate relative to the estimator's previous
// result. Consumers that maintain per-Gcell derived state (the padding
// feature extractor) re-derive only these cells when the delta is valid
// AND continuous -- same source_uid as the last result they consumed and
// revision exactly one ahead -- and fall back to a full self-diff
// otherwise (e.g. after a rebuild round, a copied/mutated result, or an
// interleaved estimate() call).
struct CongestionDelta {
  // True only on pure incremental rounds whose predecessor result was
  // also ledger-consistent: dirty_gcells then covers every Gcell whose
  // demand (and thus congestion) differs from the previous revision.
  bool valid = false;
  std::uint64_t source_uid = 0;  // process-unique estimator identity
  std::uint64_t revision = 0;    // bumped on every estimate of this source
  std::vector<std::int32_t> dirty_gcells;  // flat (gy * nx + gx) indices
  // Nets whose RSMT tree / span demand was re-derived this round. Under
  // the same continuity rules, a consumer that saw revision-1 may treat
  // any net NOT listed here as having a tree bit-identical to the one in
  // the previous result (the ledger re-hashes exactly the nets incident
  // to a moved cell and re-derives those whose quantized key changed).
  std::vector<std::int32_t> dirty_nets;
};

struct CongestionResult {
  RoutingMaps maps;
  // Tree for every net, index-aligned with Design::nets. Degree-0/1 nets
  // yield empty/singleton trees.
  std::vector<RsmtTree> trees;
  // Number of I-shaped segments whose demand was moved by the expansion.
  int expanded_segments = 0;
  CongestionDelta delta;
};

// Observability for the incremental path (ledger/cache effectiveness).
struct IncrementalStats {
  // Last estimate_incremental() call.
  bool last_was_full = false;
  int last_dirty_nets = 0;
  int last_total_nets = 0;
  int last_replayed_segments = 0;   // expansion decisions replayed verbatim
  int last_redecided_segments = 0;  // expansion decisions recomputed
  double last_time_s = 0.0;
  // Cumulative across calls.
  int calls = 0;
  int full_rebuilds = 0;
  std::int64_t dirty_nets_total = 0;
  std::int64_t nets_total = 0;  // nets examined across incremental rounds
  double incremental_time_s = 0.0;  // time spent in ledger-based rounds
  double full_time_s = 0.0;         // time spent in full-rebuild rounds
  // Rebuild-round verification failures (must stay 0; see verify_rebuild).
  std::uint64_t drift_count = 0;

  double dirty_net_frac() const {
    return nets_total > 0
               ? static_cast<double>(dirty_nets_total) /
                     static_cast<double>(nets_total)
               : 0.0;
  }
};

class CongestionEstimator {
 public:
  CongestionEstimator(const Design& design, CongestionConfig config);

  // Full estimation from the design's current cell positions.
  CongestionResult estimate() const;

  // Ledger-based estimation: bit-identical to estimate() but only dirty
  // nets (quantized pin key changed since the last call) are
  // re-accumulated, and detour expansion is re-decided only where demand
  // changed. The first call (and every full_rebuild_interval-th call)
  // rebuilds the ledger from scratch.
  CongestionResult estimate_incremental();

  const GcellGrid& grid() const { return grid_; }

  // Pin-access capacity of one Gcell under the crowding model.
  double gcell_pin_capacity() const;

  // Topology-cache statistics (accumulated across estimate() calls).
  const RsmtCache& tree_cache() const { return cache_; }
  RsmtCache& tree_cache() { return cache_; }
  void invalidate_tree_cache() {
    cache_.clear();
    ledger_.invalidate();  // stale trees must not be replayed
  }

  const IncrementalStats& incremental_stats() const { return incr_stats_; }

  // --- checkpoint support (trial orchestration) ------------------------
  // Serializes the incremental-estimation state: the demand ledger plus
  // the rebuild-cadence counter. The RSMT topology cache is NOT included
  // (the ledger carries the trees it needs; dirty nets simply rebuild).
  std::string save_incremental_state() const;
  // Restores state saved by save_incremental_state(). Returns false (and
  // leaves the estimator cold, next call = full rebuild) when the blob is
  // empty; throws CheckpointError on a malformed blob or a grid mismatch.
  bool restore_incremental_state(const std::string& blob);
  // Hash of every congestion-config field that shapes the ledger's
  // contents. A snapshot's ledger may only warm-start an estimator whose
  // fingerprint matches (a cold start is always correct regardless).
  std::uint64_t config_fingerprint() const;

 private:
  struct SpanBuild;  // trees + quantized spans (+ keys) for all nets

  SpanBuild build_all_spans(bool want_keys) const;
  void spans_of(const RsmtTree& tree, std::vector<LedgerSpan>& out) const;
  void accumulate_base(const std::vector<std::vector<LedgerSpan>>& spans,
                       Map2D<double>& dmd_h, Map2D<double>& dmd_v) const;
  void add_pin_layer(Map2D<double>& dmd_h, Map2D<double>& dmd_v,
                     Map2D<double>* pin_count_out, Map2D<double>* applied_out,
                     std::vector<std::int32_t>* pin_cell_out) const;
  int expand_all(const std::vector<RsmtTree>& trees, RoutingMaps& maps,
                 std::vector<std::vector<ExpansionMove>>* record) const;

  CongestionResult rebuild_full();
  CongestionResult incremental_pass(int& dirty_nets, int& replayed,
                                    int& redecided,
                                    std::vector<std::int32_t>* dirty_net_ids);

  const Design& design_;
  CongestionConfig config_;
  GcellGrid grid_;
  CapacityMaps capacity_;  // capacity depends only on fixed blockages
  // Per-net memo of RSMT topologies; estimate() is logically const, the
  // cache is a pure performance artifact.
  mutable RsmtCache cache_;
  DemandLedger ledger_;
  IncrementalStats incr_stats_;
  int calls_since_rebuild_ = 0;
  // Delta identity: uid_ is process-unique (consumers detect "different
  // estimator object"), revision_ counts estimates (consumers detect
  // skipped results). estimate() is logically const; the revision is
  // delta bookkeeping, not estimation state.
  const std::uint64_t uid_;
  mutable std::uint64_t revision_ = 0;
  // True when the previous estimate's maps equal the ledger's applied
  // state (incremental or rebuild round, not a const estimate()), i.e.
  // the next round's ledger marks cover all changes vs that result.
  mutable bool last_from_ledger_ = false;
};

}  // namespace puffer
