// Routing-detour-imitation-based congestion estimation (paper SS III-A).
//
// Produces a 2D congestion map from the current (possibly overlapping)
// global-placement state in three steps:
//
//  1. Blockage-aware capacity assessment (grid/capacity.h, Eq. 8).
//  2. Topology-based probabilistic demand: each net is decomposed by the
//     RSMT builder into two-point segments; an "I"-shaped segment adds a
//     unit of demand along its covered Gcells in its direction, an
//     "L"-shaped segment spreads the average demand of the two possible
//     L routes over its bounding box, and a pin penalty captures local
//     nets whose pins share a Gcell.
//  3. Detour-imitating demand expansion: congested I-shaped segments
//     transfer their demand to a nearby parallel row/column with slack.
//     If the moved endpoint is a Steiner point the connecting
//     perpendicular demand is added (a true routing detour); if it is a
//     cell pin, no connector is added, imitating the spreading of the
//     clustered cells themselves.
//
// The estimator retains the per-net RSMT topologies so the feature
// extractor (padding/features.h) can compute the GNN-inspired pin
// congestion on the same trees.
#pragma once

#include <vector>

#include "grid/routing_maps.h"
#include "netlist/design.h"
#include "rsmt/rsmt.h"
#include "rsmt/rsmt_cache.h"

namespace puffer {

struct CongestionConfig {
  // Gcell height in standard-cell rows (global-routing granularity).
  double rows_per_gcell = 3.0;
  // Demand (track-equivalents, added to both directions) per pin in a
  // Gcell; models local-net consumption. Strategy parameter.
  double pin_penalty = 0.04;
  // Pin-crowding model: a Gcell has pin-access capacity for roughly
  // pins_per_site pins per placement site; every pin beyond that needs an
  // escape wire, adding pin_crowding/2 track-equivalents to each
  // direction. Off by default here so the estimator keeps the paper's
  // pure topology-demand conservation (the evaluation router enables it;
  // strategy exploration may raise it for padding features too).
  double pins_per_site = 2.0;
  double pin_crowding = 0.0;
  // RSMT topology cache: nets whose quantized pin positions are unchanged
  // since the previous estimate() reuse their tree (see rsmt_cache.h).
  bool enable_rsmt_cache = true;
  double cache_quantum = 1e-3;
  // Detour expansion: search radius in Gcells and on/off switch (the
  // estimation-accuracy ablation toggles this).
  int expand_radius = 4;
  bool enable_detour_expansion = true;
  // A segment is considered congested (triggering expansion) when some
  // Gcell on it exceeds this demand/capacity ratio. Strategy parameter.
  double congested_ratio = 1.0;
};

struct CongestionResult {
  RoutingMaps maps;
  // Tree for every net, index-aligned with Design::nets. Degree-0/1 nets
  // yield empty/singleton trees.
  std::vector<RsmtTree> trees;
  // Number of I-shaped segments whose demand was moved by the expansion.
  int expanded_segments = 0;
};

class CongestionEstimator {
 public:
  CongestionEstimator(const Design& design, CongestionConfig config);

  // Full estimation from the design's current cell positions.
  CongestionResult estimate() const;

  const GcellGrid& grid() const { return grid_; }

  // Pin-access capacity of one Gcell under the crowding model.
  double gcell_pin_capacity() const;

  // Topology-cache statistics (accumulated across estimate() calls).
  const RsmtCache& tree_cache() const { return cache_; }
  void invalidate_tree_cache() { cache_.clear(); }

 private:
  const Design& design_;
  CongestionConfig config_;
  GcellGrid grid_;
  CapacityMaps capacity_;  // capacity depends only on fixed blockages
  // Per-net memo of RSMT topologies; estimate() is logically const, the
  // cache is a pure performance artifact.
  mutable RsmtCache cache_;
};

}  // namespace puffer
