#include "congestion/estimator.h"

#include <algorithm>
#include <cmath>

namespace puffer {

CongestionEstimator::CongestionEstimator(const Design& design,
                                         CongestionConfig config)
    : design_(design),
      config_(config),
      grid_(GcellGrid::from_row_pitch(design.die, design.tech.row_height,
                                      config.rows_per_gcell)),
      capacity_(build_capacity_maps(design, grid_)) {}

namespace {

// Accumulates probabilistic demand for one two-point segment.
void add_segment_demand(const GcellGrid& grid, const Point& a, const Point& b,
                        Map2D<double>& dmd_h, Map2D<double>& dmd_v) {
  const GcellIndex ga = grid.index_of(a.x, a.y);
  const GcellIndex gb = grid.index_of(b.x, b.y);
  const int x0 = std::min(ga.gx, gb.gx), x1 = std::max(ga.gx, gb.gx);
  const int y0 = std::min(ga.gy, gb.gy), y1 = std::max(ga.gy, gb.gy);
  if (x0 == x1 && y0 == y1) return;  // same Gcell: covered by pin penalty
  if (y0 == y1) {
    // Horizontal I-shape: one unit across the covered Gcells.
    for (int gx = x0; gx <= x1; ++gx) dmd_h.at(gx, y0) += 1.0;
    return;
  }
  if (x0 == x1) {
    for (int gy = y0; gy <= y1; ++gy) dmd_v.at(x0, gy) += 1.0;
    return;
  }
  // L-shape: spread the average demand of the two candidate L routes over
  // the bounding box: each row carries the horizontal crossing with
  // probability 1/#rows, each column the vertical one with 1/#cols.
  const double ph = 1.0 / static_cast<double>(y1 - y0 + 1);
  const double pv = 1.0 / static_cast<double>(x1 - x0 + 1);
  for (int gy = y0; gy <= y1; ++gy) {
    for (int gx = x0; gx <= x1; ++gx) {
      dmd_h.at(gx, gy) += ph;
      dmd_v.at(gx, gy) += pv;
    }
  }
}

}  // namespace

CongestionResult CongestionEstimator::estimate() const {
  CongestionResult result;
  result.maps = RoutingMaps(grid_, capacity_);
  Map2D<double>& dmd_h = result.maps.dmd_h;
  Map2D<double>& dmd_v = result.maps.dmd_v;

  // --- step 2a: RSMT topologies ----------------------------------------
  result.trees.resize(design_.nets.size());
  std::vector<Point> pin_pts;
  for (std::size_t n = 0; n < design_.nets.size(); ++n) {
    const Net& net = design_.nets[n];
    pin_pts.clear();
    pin_pts.reserve(net.pins.size());
    for (PinId pid : net.pins) pin_pts.push_back(design_.pin_position(pid));
    result.trees[n] = build_rsmt(pin_pts);
  }

  // --- step 2b: probabilistic demand ------------------------------------
  for (const RsmtTree& tree : result.trees) {
    for (const RsmtSegment& seg : tree.segments) {
      add_segment_demand(grid_, tree.points[static_cast<std::size_t>(seg.a)].pos,
                         tree.points[static_cast<std::size_t>(seg.b)].pos,
                         dmd_h, dmd_v);
    }
  }

  // --- step 2c: pin penalty ----------------------------------------------
  if (config_.pin_penalty > 0.0) {
    for (const Pin& pin : design_.pins) {
      const Cell& c = design_.cells[static_cast<std::size_t>(pin.cell)];
      const GcellIndex g = grid_.index_of(c.x + pin.dx, c.y + pin.dy);
      dmd_h.at(g.gx, g.gy) += config_.pin_penalty;
      dmd_v.at(g.gx, g.gy) += config_.pin_penalty;
    }
  }

  // --- step 3: detour-imitating expansion --------------------------------
  if (!config_.enable_detour_expansion) return result;

  const auto ratio_h = [&](int gx, int gy) {
    return dmd_h.at(gx, gy) / std::max(result.maps.cap_h.at(gx, gy), 1.0);
  };
  const auto ratio_v = [&](int gx, int gy) {
    return dmd_v.at(gx, gy) / std::max(result.maps.cap_v.at(gx, gy), 1.0);
  };

  for (const RsmtTree& tree : result.trees) {
    for (const RsmtSegment& seg : tree.segments) {
      const RsmtPoint& pa = tree.points[static_cast<std::size_t>(seg.a)];
      const RsmtPoint& pb = tree.points[static_cast<std::size_t>(seg.b)];
      const GcellIndex ga = grid_.index_of(pa.pos.x, pa.pos.y);
      const GcellIndex gb = grid_.index_of(pb.pos.x, pb.pos.y);
      const bool horizontal = (ga.gy == gb.gy) && (ga.gx != gb.gx);
      const bool vertical = (ga.gx == gb.gx) && (ga.gy != gb.gy);
      if (!horizontal && !vertical) continue;  // only I-shaped segments

      if (horizontal) {
        const int y = ga.gy;
        const int x0 = std::min(ga.gx, gb.gx), x1 = std::max(ga.gx, gb.gx);
        double worst = 0.0;
        for (int gx = x0; gx <= x1; ++gx) worst = std::max(worst, ratio_h(gx, y));
        if (worst <= config_.congested_ratio) continue;
        // Find the nearest parallel row where the whole span has slack for
        // one more track.
        int target = -1;
        for (int k = 1; k <= config_.expand_radius && target < 0; ++k) {
          for (const int cand : {y + k, y - k}) {
            if (cand < 0 || cand >= grid_.ny()) continue;
            bool fits = true;
            for (int gx = x0; gx <= x1 && fits; ++gx) {
              fits = dmd_h.at(gx, cand) + 1.0 <=
                     std::max(result.maps.cap_h.at(gx, cand), 1.0) *
                         config_.congested_ratio;
            }
            if (fits) {
              target = cand;
              break;
            }
          }
        }
        if (target < 0) continue;
        for (int gx = x0; gx <= x1; ++gx) {
          dmd_h.at(gx, y) -= 1.0;
          dmd_h.at(gx, target) += 1.0;
        }
        // Steiner endpoints need a perpendicular connector back to the
        // tree (a real detour); pin endpoints just model cell spreading.
        const int ylo = std::min(y, target), yhi = std::max(y, target);
        if (pa.is_steiner()) {
          for (int gy = ylo; gy <= yhi; ++gy) dmd_v.at(ga.gx, gy) += 1.0;
        }
        if (pb.is_steiner()) {
          for (int gy = ylo; gy <= yhi; ++gy) dmd_v.at(gb.gx, gy) += 1.0;
        }
        ++result.expanded_segments;
      } else if (vertical) {
        const int x = ga.gx;
        const int y0 = std::min(ga.gy, gb.gy), y1 = std::max(ga.gy, gb.gy);
        double worst = 0.0;
        for (int gy = y0; gy <= y1; ++gy) worst = std::max(worst, ratio_v(x, gy));
        if (worst <= config_.congested_ratio) continue;
        int target = -1;
        for (int k = 1; k <= config_.expand_radius && target < 0; ++k) {
          for (const int cand : {x + k, x - k}) {
            if (cand < 0 || cand >= grid_.nx()) continue;
            bool fits = true;
            for (int gy = y0; gy <= y1 && fits; ++gy) {
              fits = dmd_v.at(cand, gy) + 1.0 <=
                     std::max(result.maps.cap_v.at(cand, gy), 1.0) *
                         config_.congested_ratio;
            }
            if (fits) {
              target = cand;
              break;
            }
          }
        }
        if (target < 0) continue;
        for (int gy = y0; gy <= y1; ++gy) {
          dmd_v.at(x, gy) -= 1.0;
          dmd_v.at(target, gy) += 1.0;
        }
        const int xlo = std::min(x, target), xhi = std::max(x, target);
        if (pa.is_steiner()) {
          for (int gx = xlo; gx <= xhi; ++gx) dmd_h.at(gx, ga.gy) += 1.0;
        }
        if (pb.is_steiner()) {
          for (int gx = xlo; gx <= xhi; ++gx) dmd_h.at(gx, gb.gy) += 1.0;
        }
        ++result.expanded_segments;
      }
    }
  }
  return result;
}

}  // namespace puffer
