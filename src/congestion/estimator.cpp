#include "congestion/estimator.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace puffer {

CongestionEstimator::CongestionEstimator(const Design& design,
                                         CongestionConfig config)
    : design_(design),
      config_(config),
      grid_(GcellGrid::from_row_pitch(design.die, design.tech.row_height,
                                      config.rows_per_gcell)),
      capacity_(build_capacity_maps(design, grid_)),
      cache_(design.nets.size(), config.cache_quantum,
             config.enable_rsmt_cache) {}

namespace {

// Gcell bounding box of one two-point segment, precomputed once so the
// banded demand pass does not redo coordinate transforms per row band.
struct SegSpan {
  int x0, x1, y0, y1;
};

// Accumulates probabilistic demand for one segment, restricted to Gcell
// rows [band_lo, band_hi]. Each row band is owned by exactly one chunk,
// so per-Gcell addition order equals the serial net order and the result
// is bit-identical for any worker count.
void add_span_demand(const SegSpan& s, Map2D<double>& dmd_h,
                     Map2D<double>& dmd_v, int band_lo, int band_hi) {
  const int x0 = s.x0, x1 = s.x1, y0 = s.y0, y1 = s.y1;
  if (x0 == x1 && y0 == y1) return;  // same Gcell: covered by pin penalty
  if (y0 == y1) {
    // Horizontal I-shape: one unit across the covered Gcells.
    if (y0 < band_lo || y0 > band_hi) return;
    for (int gx = x0; gx <= x1; ++gx) dmd_h.at(gx, y0) += 1.0;
    return;
  }
  const int lo = std::max(y0, band_lo), hi = std::min(y1, band_hi);
  if (lo > hi) return;
  if (x0 == x1) {
    for (int gy = lo; gy <= hi; ++gy) dmd_v.at(x0, gy) += 1.0;
    return;
  }
  // L-shape: spread the average demand of the two candidate L routes over
  // the bounding box: each row carries the horizontal crossing with
  // probability 1/#rows, each column the vertical one with 1/#cols.
  const double ph = 1.0 / static_cast<double>(y1 - y0 + 1);
  const double pv = 1.0 / static_cast<double>(x1 - x0 + 1);
  for (int gy = lo; gy <= hi; ++gy) {
    for (int gx = x0; gx <= x1; ++gx) {
      dmd_h.at(gx, gy) += ph;
      dmd_v.at(gx, gy) += pv;
    }
  }
}

}  // namespace

double CongestionEstimator::gcell_pin_capacity() const {
  const double site_w = std::max(design_.tech.site_width, 1e-9);
  const double row_h = std::max(design_.tech.row_height, 1e-9);
  const double sites =
      (grid_.gcell_w() / site_w) * (grid_.gcell_h() / row_h);
  return std::max(1.0, sites * config_.pins_per_site);
}

CongestionResult CongestionEstimator::estimate() const {
  CongestionResult result;
  result.maps = RoutingMaps(grid_, capacity_);
  Map2D<double>& dmd_h = result.maps.dmd_h;
  Map2D<double>& dmd_v = result.maps.dmd_v;

  // --- step 2a: RSMT topologies ----------------------------------------
  // Parallel per net: each net writes only its own tree / span slots, and
  // unchanged nets are served from the topology cache.
  const std::int64_t n_nets = static_cast<std::int64_t>(design_.nets.size());
  result.trees.resize(design_.nets.size());
  std::vector<std::vector<SegSpan>> spans(design_.nets.size());
  par::parallel_for(0, n_nets, 16, [&](std::int64_t nb, std::int64_t ne, int) {
    std::vector<Point> pin_pts;
    for (std::int64_t n = nb; n < ne; ++n) {
      const Net& net = design_.nets[static_cast<std::size_t>(n)];
      pin_pts.clear();
      pin_pts.reserve(net.pins.size());
      for (PinId pid : net.pins) pin_pts.push_back(design_.pin_position(pid));
      const RsmtTree& tree =
          cache_.get_or_build(static_cast<std::size_t>(n), pin_pts);
      result.trees[static_cast<std::size_t>(n)] = tree;
      auto& net_spans = spans[static_cast<std::size_t>(n)];
      net_spans.reserve(tree.segments.size());
      for (const RsmtSegment& seg : tree.segments) {
        const Point& a = tree.points[static_cast<std::size_t>(seg.a)].pos;
        const Point& b = tree.points[static_cast<std::size_t>(seg.b)].pos;
        const GcellIndex ga = grid_.index_of(a.x, a.y);
        const GcellIndex gb = grid_.index_of(b.x, b.y);
        net_spans.push_back({std::min(ga.gx, gb.gx), std::max(ga.gx, gb.gx),
                             std::min(ga.gy, gb.gy), std::max(ga.gy, gb.gy)});
      }
    }
  }, 256);

  // --- step 2b: probabilistic demand ------------------------------------
  // Row-banded: every chunk walks all spans but writes only the Gcell
  // rows it owns (see add_span_demand).
  par::parallel_for(
      0, grid_.ny(), std::max(1, grid_.ny() / 8),
      [&](std::int64_t band_lo, std::int64_t band_hi_excl, int) {
        for (const auto& net_spans : spans) {
          for (const SegSpan& s : net_spans) {
            add_span_demand(s, dmd_h, dmd_v, static_cast<int>(band_lo),
                            static_cast<int>(band_hi_excl) - 1);
          }
        }
      },
      8);

  // --- step 2c: pin penalty + crowding -----------------------------------
  if (config_.pin_penalty > 0.0 || config_.pin_crowding > 0.0) {
    Map2D<double> pin_cnt(grid_.nx(), grid_.ny());
    for (const Pin& pin : design_.pins) {
      const Cell& c = design_.cells[static_cast<std::size_t>(pin.cell)];
      const GcellIndex g = grid_.index_of(c.x + pin.dx, c.y + pin.dy);
      pin_cnt.at(g.gx, g.gy) += 1.0;
    }
    const double pin_cap = gcell_pin_capacity();
    for (int gy = 0; gy < grid_.ny(); ++gy) {
      for (int gx = 0; gx < grid_.nx(); ++gx) {
        const double cnt = pin_cnt.at(gx, gy);
        if (cnt <= 0.0) continue;
        // Flat per-pin term plus the superlinear crowding excess: pins
        // beyond the Gcell's access capacity each need an escape wire,
        // split evenly between the two directions.
        const double excess = std::max(0.0, cnt - pin_cap);
        const double add = config_.pin_penalty * cnt +
                           0.5 * config_.pin_crowding * excess;
        if (add <= 0.0) continue;
        dmd_h.at(gx, gy) += add;
        dmd_v.at(gx, gy) += add;
      }
    }
  }

  // --- step 3: detour-imitating expansion --------------------------------
  if (!config_.enable_detour_expansion) return result;

  const auto ratio_h = [&](int gx, int gy) {
    return dmd_h.at(gx, gy) / std::max(result.maps.cap_h.at(gx, gy), 1.0);
  };
  const auto ratio_v = [&](int gx, int gy) {
    return dmd_v.at(gx, gy) / std::max(result.maps.cap_v.at(gx, gy), 1.0);
  };

  for (const RsmtTree& tree : result.trees) {
    for (const RsmtSegment& seg : tree.segments) {
      const RsmtPoint& pa = tree.points[static_cast<std::size_t>(seg.a)];
      const RsmtPoint& pb = tree.points[static_cast<std::size_t>(seg.b)];
      const GcellIndex ga = grid_.index_of(pa.pos.x, pa.pos.y);
      const GcellIndex gb = grid_.index_of(pb.pos.x, pb.pos.y);
      const bool horizontal = (ga.gy == gb.gy) && (ga.gx != gb.gx);
      const bool vertical = (ga.gx == gb.gx) && (ga.gy != gb.gy);
      if (!horizontal && !vertical) continue;  // only I-shaped segments

      if (horizontal) {
        const int y = ga.gy;
        const int x0 = std::min(ga.gx, gb.gx), x1 = std::max(ga.gx, gb.gx);
        double worst = 0.0;
        for (int gx = x0; gx <= x1; ++gx) worst = std::max(worst, ratio_h(gx, y));
        if (worst <= config_.congested_ratio) continue;
        // Find the nearest parallel row where the whole span has slack for
        // one more track.
        int target = -1;
        for (int k = 1; k <= config_.expand_radius && target < 0; ++k) {
          for (const int cand : {y + k, y - k}) {
            if (cand < 0 || cand >= grid_.ny()) continue;
            bool fits = true;
            for (int gx = x0; gx <= x1 && fits; ++gx) {
              fits = dmd_h.at(gx, cand) + 1.0 <=
                     std::max(result.maps.cap_h.at(gx, cand), 1.0) *
                         config_.congested_ratio;
            }
            if (fits) {
              target = cand;
              break;
            }
          }
        }
        if (target < 0) continue;
        for (int gx = x0; gx <= x1; ++gx) {
          dmd_h.at(gx, y) -= 1.0;
          dmd_h.at(gx, target) += 1.0;
        }
        // Steiner endpoints need a perpendicular connector back to the
        // tree (a real detour); pin endpoints just model cell spreading.
        const int ylo = std::min(y, target), yhi = std::max(y, target);
        if (pa.is_steiner()) {
          for (int gy = ylo; gy <= yhi; ++gy) dmd_v.at(ga.gx, gy) += 1.0;
        }
        if (pb.is_steiner()) {
          for (int gy = ylo; gy <= yhi; ++gy) dmd_v.at(gb.gx, gy) += 1.0;
        }
        ++result.expanded_segments;
      } else if (vertical) {
        const int x = ga.gx;
        const int y0 = std::min(ga.gy, gb.gy), y1 = std::max(ga.gy, gb.gy);
        double worst = 0.0;
        for (int gy = y0; gy <= y1; ++gy) worst = std::max(worst, ratio_v(x, gy));
        if (worst <= config_.congested_ratio) continue;
        int target = -1;
        for (int k = 1; k <= config_.expand_radius && target < 0; ++k) {
          for (const int cand : {x + k, x - k}) {
            if (cand < 0 || cand >= grid_.nx()) continue;
            bool fits = true;
            for (int gy = y0; gy <= y1 && fits; ++gy) {
              fits = dmd_v.at(cand, gy) + 1.0 <=
                     std::max(result.maps.cap_v.at(cand, gy), 1.0) *
                         config_.congested_ratio;
            }
            if (fits) {
              target = cand;
              break;
            }
          }
        }
        if (target < 0) continue;
        for (int gy = y0; gy <= y1; ++gy) {
          dmd_v.at(x, gy) -= 1.0;
          dmd_v.at(target, gy) += 1.0;
        }
        const int xlo = std::min(x, target), xhi = std::max(x, target);
        if (pa.is_steiner()) {
          for (int gx = xlo; gx <= xhi; ++gx) dmd_h.at(gx, ga.gy) += 1.0;
        }
        if (pb.is_steiner()) {
          for (int gx = xlo; gx <= xhi; ++gx) dmd_h.at(gx, gb.gy) += 1.0;
        }
        ++result.expanded_segments;
      }
    }
  }
  return result;
}

}  // namespace puffer
