#include "congestion/estimator.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logger.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "io/checkpoint.h"

namespace puffer {

namespace {
constexpr const char* kTag = "congestion";

// Process-unique estimator identities for CongestionDelta::source_uid
// (0 is reserved for "no source").
std::atomic<std::uint64_t> g_estimator_uid{0};
}

CongestionEstimator::CongestionEstimator(const Design& design,
                                         CongestionConfig config)
    : design_(design),
      config_(config),
      grid_(GcellGrid::from_row_pitch(design.die, design.tech.row_height,
                                      config.rows_per_gcell)),
      capacity_(build_capacity_maps(design, grid_)),
      cache_(design.nets.size(), config.cache_quantum,
             config.enable_rsmt_cache),
      uid_(g_estimator_uid.fetch_add(1, std::memory_order_relaxed) + 1) {}

namespace {

// Decides (and applies) the detour-expansion move of one I-shaped segment
// -- the exact sequential algorithm of paper step 3: find the nearest
// parallel row/column where the whole span has slack for one more track,
// move the unit demand there, and add perpendicular connector demand for
// Steiner endpoints. Non-I segments return an empty (non-move) record.
ExpansionMove decide_segment(const CongestionConfig& config, RoutingMaps& maps,
                             const GcellIndex& ga, const GcellIndex& gb,
                             bool a_steiner, bool b_steiner) {
  ExpansionMove mv;
  Map2D<double>& dmd_h = maps.dmd_h;
  Map2D<double>& dmd_v = maps.dmd_v;
  const bool horizontal = (ga.gy == gb.gy) && (ga.gx != gb.gx);
  const bool vertical = (ga.gx == gb.gx) && (ga.gy != gb.gy);
  if (!horizontal && !vertical) return mv;

  if (horizontal) {
    mv.horizontal = true;
    const int y = ga.gy;
    const int x0 = std::min(ga.gx, gb.gx), x1 = std::max(ga.gx, gb.gx);
    mv.lo = x0;
    mv.hi = x1;
    mv.src = y;
    mv.dst = y;
    double worst = 0.0;
    for (int gx = x0; gx <= x1; ++gx) {
      worst = std::max(worst, dmd_h.at(gx, y) /
                                  std::max(maps.cap_h.at(gx, y), 1.0));
    }
    if (worst <= config.congested_ratio) return mv;
    int target = -1;
    for (int k = 1; k <= config.expand_radius && target < 0; ++k) {
      for (const int cand : {y + k, y - k}) {
        if (cand < 0 || cand >= dmd_h.ny()) continue;
        bool fits = true;
        for (int gx = x0; gx <= x1 && fits; ++gx) {
          fits = dmd_h.at(gx, cand) + 1.0 <=
                 std::max(maps.cap_h.at(gx, cand), 1.0) *
                     config.congested_ratio;
        }
        if (fits) {
          target = cand;
          break;
        }
      }
    }
    if (target < 0) return mv;
    for (int gx = x0; gx <= x1; ++gx) {
      dmd_h.at(gx, y) -= 1.0;
      dmd_h.at(gx, target) += 1.0;
    }
    // Steiner endpoints need a perpendicular connector back to the tree
    // (a real detour); pin endpoints just model cell spreading.
    const int ylo = std::min(y, target), yhi = std::max(y, target);
    if (a_steiner) {
      mv.conn_a = ga.gx;
      for (int gy = ylo; gy <= yhi; ++gy) dmd_v.at(ga.gx, gy) += 1.0;
    }
    if (b_steiner) {
      mv.conn_b = gb.gx;
      for (int gy = ylo; gy <= yhi; ++gy) dmd_v.at(gb.gx, gy) += 1.0;
    }
    mv.moved = true;
    mv.dst = target;
  } else {
    mv.horizontal = false;
    const int x = ga.gx;
    const int y0 = std::min(ga.gy, gb.gy), y1 = std::max(ga.gy, gb.gy);
    mv.lo = y0;
    mv.hi = y1;
    mv.src = x;
    mv.dst = x;
    double worst = 0.0;
    for (int gy = y0; gy <= y1; ++gy) {
      worst = std::max(worst, dmd_v.at(x, gy) /
                                  std::max(maps.cap_v.at(x, gy), 1.0));
    }
    if (worst <= config.congested_ratio) return mv;
    int target = -1;
    for (int k = 1; k <= config.expand_radius && target < 0; ++k) {
      for (const int cand : {x + k, x - k}) {
        if (cand < 0 || cand >= dmd_v.nx()) continue;
        bool fits = true;
        for (int gy = y0; gy <= y1 && fits; ++gy) {
          fits = dmd_v.at(cand, gy) + 1.0 <=
                 std::max(maps.cap_v.at(cand, gy), 1.0) *
                     config.congested_ratio;
        }
        if (fits) {
          target = cand;
          break;
        }
      }
    }
    if (target < 0) return mv;
    for (int gy = y0; gy <= y1; ++gy) {
      dmd_v.at(x, gy) -= 1.0;
      dmd_v.at(target, gy) += 1.0;
    }
    const int xlo = std::min(x, target), xhi = std::max(x, target);
    if (a_steiner) {
      mv.conn_a = ga.gy;
      for (int gx = xlo; gx <= xhi; ++gx) dmd_h.at(gx, ga.gy) += 1.0;
    }
    if (b_steiner) {
      mv.conn_b = gb.gy;
      for (int gx = xlo; gx <= xhi; ++gx) dmd_h.at(gx, gb.gy) += 1.0;
    }
    mv.moved = true;
    mv.dst = target;
  }
  return mv;
}

}  // namespace

double CongestionEstimator::gcell_pin_capacity() const {
  const double site_w = std::max(design_.tech.site_width, 1e-9);
  const double row_h = std::max(design_.tech.row_height, 1e-9);
  const double sites =
      (grid_.gcell_w() / site_w) * (grid_.gcell_h() / row_h);
  return std::max(1.0, sites * config_.pins_per_site);
}

void CongestionEstimator::spans_of(const RsmtTree& tree,
                                   std::vector<LedgerSpan>& out) const {
  out.clear();
  out.reserve(tree.segments.size());
  for (const RsmtSegment& seg : tree.segments) {
    const Point& a = tree.points[static_cast<std::size_t>(seg.a)].pos;
    const Point& b = tree.points[static_cast<std::size_t>(seg.b)].pos;
    const GcellIndex ga = grid_.index_of(a.x, a.y);
    const GcellIndex gb = grid_.index_of(b.x, b.y);
    LedgerSpan s;
    s.x0 = std::min(ga.gx, gb.gx);
    s.x1 = std::max(ga.gx, gb.gx);
    s.y0 = std::min(ga.gy, gb.gy);
    s.y1 = std::max(ga.gy, gb.gy);
    if (s.x0 == s.x1 && s.y0 == s.y1) continue;  // covered by pin penalty
    if (s.y0 == s.y1) {
      s.qh = 1.0;  // horizontal I-shape: one unit across the covered Gcells
    } else if (s.x0 == s.x1) {
      s.qv = 1.0;
    } else {
      // L-shape: spread the average demand of the two candidate L routes
      // over the bounding box; each row carries the horizontal crossing
      // with probability 1/#rows, each column the vertical with 1/#cols.
      s.qh = quantize_demand(1.0 / static_cast<double>(s.y1 - s.y0 + 1));
      s.qv = quantize_demand(1.0 / static_cast<double>(s.x1 - s.x0 + 1));
    }
    out.push_back(s);
  }
}

struct CongestionEstimator::SpanBuild {
  std::vector<RsmtTree> trees;
  std::vector<std::vector<LedgerSpan>> spans;
  std::vector<std::uint64_t> keys;
};

// Parallel per net: each net writes only its own tree / span slots, and
// unchanged nets are served from the topology cache.
CongestionEstimator::SpanBuild CongestionEstimator::build_all_spans(
    bool want_keys) const {
  SpanBuild b;
  const std::size_t n_nets = design_.nets.size();
  b.trees.resize(n_nets);
  b.spans.resize(n_nets);
  if (want_keys) b.keys.assign(n_nets, 0);
  par::parallel_for(
      0, static_cast<std::int64_t>(n_nets), 16,
      [&](std::int64_t nb, std::int64_t ne, int) {
        std::vector<Point> pin_pts;
        for (std::int64_t n = nb; n < ne; ++n) {
          const std::size_t ni = static_cast<std::size_t>(n);
          const Net& net = design_.nets[ni];
          pin_pts.clear();
          pin_pts.reserve(net.pins.size());
          for (PinId pid : net.pins) {
            pin_pts.push_back(design_.pin_position(pid));
          }
          const std::uint64_t key =
              cache_.enabled() ? cache_.key_of(pin_pts) : 0;
          if (want_keys) b.keys[ni] = key;
          b.trees[ni] = cache_.get_or_build(ni, pin_pts, key);
          spans_of(b.trees[ni], b.spans[ni]);
        }
      },
      256);
  return b;
}

// Row-banded probabilistic demand: every chunk walks all spans but writes
// only the Gcell rows it owns, so per-Gcell addition order equals the
// serial net order for any worker count (and is exact anyway, since all
// contributions are kDemandQuantum multiples).
void CongestionEstimator::accumulate_base(
    const std::vector<std::vector<LedgerSpan>>& spans, Map2D<double>& dmd_h,
    Map2D<double>& dmd_v) const {
  par::parallel_for(
      0, grid_.ny(), std::max(1, grid_.ny() / 8),
      [&](std::int64_t band_lo, std::int64_t band_hi_excl, int) {
        const int lo = static_cast<int>(band_lo);
        const int hi = static_cast<int>(band_hi_excl) - 1;
        for (const auto& net_spans : spans) {
          for (const LedgerSpan& s : net_spans) {
            const int y0 = std::max(s.y0, lo), y1 = std::min(s.y1, hi);
            for (int gy = y0; gy <= y1; ++gy) {
              for (int gx = s.x0; gx <= s.x1; ++gx) {
                if (s.qh != 0.0) dmd_h.at(gx, gy) += s.qh;
                if (s.qv != 0.0) dmd_v.at(gx, gy) += s.qv;
              }
            }
          }
        }
      },
      8);
}

// Pin penalty + crowding: a flat per-pin term plus the superlinear
// crowding excess (pins beyond the Gcell's access capacity each need an
// escape wire, split evenly between the two directions). Optionally
// records the pin counts / applied values / per-pin Gcells for the ledger.
void CongestionEstimator::add_pin_layer(
    Map2D<double>& dmd_h, Map2D<double>& dmd_v, Map2D<double>* pin_count_out,
    Map2D<double>* applied_out, std::vector<std::int32_t>* pin_cell_out) const {
  if (config_.pin_penalty <= 0.0 && config_.pin_crowding <= 0.0) return;
  Map2D<double> pin_cnt(grid_.nx(), grid_.ny());
  const int nx = grid_.nx();
  for (std::size_t p = 0; p < design_.pins.size(); ++p) {
    const Pin& pin = design_.pins[p];
    const Cell& c = design_.cells[static_cast<std::size_t>(pin.cell)];
    const GcellIndex g = grid_.index_of(c.x + pin.dx, c.y + pin.dy);
    pin_cnt.at(g.gx, g.gy) += 1.0;
    if (pin_cell_out) {
      (*pin_cell_out)[p] = static_cast<std::int32_t>(g.gy) * nx + g.gx;
    }
  }
  const double pin_cap = gcell_pin_capacity();
  for (int gy = 0; gy < grid_.ny(); ++gy) {
    for (int gx = 0; gx < grid_.nx(); ++gx) {
      const double cnt = pin_cnt.at(gx, gy);
      if (cnt <= 0.0) continue;
      const double excess = std::max(0.0, cnt - pin_cap);
      const double add = quantize_demand(config_.pin_penalty * cnt +
                                         0.5 * config_.pin_crowding * excess);
      if (add <= 0.0) continue;
      dmd_h.at(gx, gy) += add;
      dmd_v.at(gx, gy) += add;
      if (applied_out) applied_out->at(gx, gy) = add;
    }
  }
  if (pin_count_out) *pin_count_out = std::move(pin_cnt);
}

// Full detour-imitating expansion over all trees in net order, optionally
// recording one ExpansionMove per segment (index-aligned) for the ledger.
int CongestionEstimator::expand_all(
    const std::vector<RsmtTree>& trees, RoutingMaps& maps,
    std::vector<std::vector<ExpansionMove>>* record) const {
  if (!config_.enable_detour_expansion) return 0;
  int expanded = 0;
  for (std::size_t n = 0; n < trees.size(); ++n) {
    const RsmtTree& tree = trees[n];
    if (record) (*record)[n].reserve(tree.segments.size());
    for (const RsmtSegment& seg : tree.segments) {
      const RsmtPoint& pa = tree.points[static_cast<std::size_t>(seg.a)];
      const RsmtPoint& pb = tree.points[static_cast<std::size_t>(seg.b)];
      const GcellIndex ga = grid_.index_of(pa.pos.x, pa.pos.y);
      const GcellIndex gb = grid_.index_of(pb.pos.x, pb.pos.y);
      const ExpansionMove mv = decide_segment(config_, maps, ga, gb,
                                              pa.is_steiner(), pb.is_steiner());
      if (mv.moved) ++expanded;
      if (record) (*record)[n].push_back(mv);
    }
  }
  return expanded;
}

CongestionResult CongestionEstimator::estimate() const {
  SpanBuild b = build_all_spans(/*want_keys=*/false);
  CongestionResult result;
  result.maps = RoutingMaps(grid_, capacity_);
  accumulate_base(b.spans, result.maps.dmd_h, result.maps.dmd_v);
  add_pin_layer(result.maps.dmd_h, result.maps.dmd_v, nullptr, nullptr,
                nullptr);
  result.trees = std::move(b.trees);
  result.expanded_segments = expand_all(result.trees, result.maps, nullptr);
  result.delta.source_uid = uid_;
  result.delta.revision = ++revision_;
  // A const estimate() does not touch the ledger, so the next incremental
  // round's marks are relative to the ledger state, not to this result.
  last_from_ledger_ = false;
  return result;
}

// From-scratch estimation that also (re)populates the demand ledger:
// per-net keys + spans, the pin layer, the pre-expansion base maps, and
// the expansion journal.
CongestionResult CongestionEstimator::rebuild_full() {
  SpanBuild b = build_all_spans(/*want_keys=*/true);
  const std::size_t n_nets = design_.nets.size();
  ledger_.reset(n_nets, design_.pins.size(), design_.cells.size(), grid_);
  for (std::size_t ci = 0; ci < design_.cells.size(); ++ci) {
    ledger_.cell_x()[ci] = design_.cells[ci].x;
    ledger_.cell_y()[ci] = design_.cells[ci].y;
  }

  CongestionResult result;
  result.maps = RoutingMaps(grid_, capacity_);
  accumulate_base(b.spans, result.maps.dmd_h, result.maps.dmd_v);
  add_pin_layer(result.maps.dmd_h, result.maps.dmd_v, &ledger_.pin_count(),
                &ledger_.applied_penalty(), &ledger_.pin_cell());
  ledger_.base_h() = result.maps.dmd_h;  // pre-expansion snapshot
  ledger_.base_v() = result.maps.dmd_v;
  for (std::size_t n = 0; n < n_nets; ++n) {
    ledger_.entry(n).key = b.keys[n];
    ledger_.entry(n).spans = std::move(b.spans[n]);
  }
  ledger_.trees() = std::move(b.trees);

  std::vector<std::vector<ExpansionMove>> record(n_nets);
  result.expanded_segments = expand_all(ledger_.trees(), result.maps, &record);
  for (std::size_t n = 0; n < n_nets; ++n) {
    ledger_.entry(n).moves = std::move(record[n]);
  }
  result.trees = ledger_.trees();
  calls_since_rebuild_ = 0;
  return result;
}

// Ledger-based estimation round: detect dirty nets by quantized pin key,
// subtract their stale span demand and re-apply the fresh one, update the
// pin layer on Gcells whose pin count changed, then re-run detour
// expansion only where the demand state differs from the previous round
// (recorded decisions are replayed verbatim elsewhere).
CongestionResult CongestionEstimator::incremental_pass(
    int& dirty_nets, int& replayed, int& redecided,
    std::vector<std::int32_t>* dirty_net_ids) {
  const std::size_t n_nets = design_.nets.size();
  ledger_.begin_round();

  // --- cell-level pre-filter -------------------------------------------
  // A net's quantized key can only change if one of its cells moved, so
  // compare each cell against the ledger's position snapshot and re-hash
  // only nets incident to a moved cell: O(cells + moved-cell pins)
  // instead of O(all pins).
  std::vector<std::uint8_t> candidate(n_nets, 0);
  std::vector<std::uint32_t> moved_cells;
  {
    std::vector<double>& sx = ledger_.cell_x();
    std::vector<double>& sy = ledger_.cell_y();
    for (std::size_t ci = 0; ci < design_.cells.size(); ++ci) {
      const Cell& c = design_.cells[ci];
      if (c.x == sx[ci] && c.y == sy[ci]) continue;
      sx[ci] = c.x;
      sy[ci] = c.y;
      moved_cells.push_back(static_cast<std::uint32_t>(ci));
      for (PinId pid : c.pins) {
        const NetId nid = design_.pins[static_cast<std::size_t>(pid)].net;
        if (nid != kInvalidId) candidate[static_cast<std::size_t>(nid)] = 1;
      }
    }
  }

  // --- dirty detection + fresh trees/spans (parallel per net) ------------
  std::vector<std::uint8_t> dirty(n_nets, 0);
  std::vector<std::vector<LedgerSpan>> fresh(n_nets);
  std::vector<std::uint64_t> fresh_keys(n_nets, 0);
  par::parallel_for(
      0, static_cast<std::int64_t>(n_nets), 16,
      [&](std::int64_t nb, std::int64_t ne, int) {
        std::vector<Point> pin_pts;
        for (std::int64_t n = nb; n < ne; ++n) {
          const std::size_t ni = static_cast<std::size_t>(n);
          if (!candidate[ni]) continue;
          const Net& net = design_.nets[ni];
          pin_pts.clear();
          pin_pts.reserve(net.pins.size());
          for (PinId pid : net.pins) {
            pin_pts.push_back(design_.pin_position(pid));
          }
          const std::uint64_t key = cache_.key_of(pin_pts);
          if (key == ledger_.entry(ni).key) continue;
          dirty[ni] = 1;
          fresh_keys[ni] = key;
          ledger_.trees()[ni] = cache_.get_or_build(ni, pin_pts, key);
          spans_of(ledger_.trees()[ni], fresh[ni]);
        }
      },
      256);

  // --- subtract stale / apply fresh span demand (exact cancellation) -----
  Map2D<double>& base_h = ledger_.base_h();
  Map2D<double>& base_v = ledger_.base_v();
  for (std::size_t n = 0; n < n_nets; ++n) {
    if (!dirty[n]) continue;
    ++dirty_nets;
    if (dirty_net_ids) dirty_net_ids->push_back(static_cast<std::int32_t>(n));
    DemandLedger::NetEntry& e = ledger_.entry(n);
    for (const LedgerSpan& s : e.spans) {
      DemandLedger::apply_span(s, base_h, base_v, -1.0);
      ledger_.mark_span_cells(s);
    }
    e.spans = std::move(fresh[n]);
    e.key = fresh_keys[n];
    for (const LedgerSpan& s : e.spans) {
      DemandLedger::apply_span(s, base_h, base_v, +1.0);
      ledger_.mark_span_cells(s);
    }
  }

  // --- pin layer on Gcells whose pin count changed -----------------------
  // Only a moved cell's pins can land in a different Gcell, so the rescan
  // covers moved cells only (update order is irrelevant: the counts are
  // exact +/-1 integer updates and `changed` is sorted before use).
  if (config_.pin_penalty > 0.0 || config_.pin_crowding > 0.0) {
    const int nx = grid_.nx();
    std::vector<std::int32_t>& pin_cell = ledger_.pin_cell();
    Map2D<double>& pin_cnt = ledger_.pin_count();
    std::vector<std::int32_t> changed;
    for (const std::uint32_t ci : moved_cells) {
      const Cell& c = design_.cells[ci];
      for (PinId pid : c.pins) {
        const std::size_t p = static_cast<std::size_t>(pid);
        const Pin& pin = design_.pins[p];
        const GcellIndex g = grid_.index_of(c.x + pin.dx, c.y + pin.dy);
        const std::int32_t flat = static_cast<std::int32_t>(g.gy) * nx + g.gx;
        if (flat == pin_cell[p]) continue;
        pin_cnt.raw()[static_cast<std::size_t>(pin_cell[p])] -= 1.0;
        pin_cnt.raw()[static_cast<std::size_t>(flat)] += 1.0;
        changed.push_back(pin_cell[p]);
        changed.push_back(flat);
        pin_cell[p] = flat;
      }
    }
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
    const double pin_cap = gcell_pin_capacity();
    Map2D<double>& applied = ledger_.applied_penalty();
    for (const std::int32_t flat : changed) {
      const int gx = flat % nx, gy = flat / nx;
      const double old_add = applied.at(gx, gy);
      if (old_add != 0.0) {
        base_h.at(gx, gy) -= old_add;
        base_v.at(gx, gy) -= old_add;
      }
      double add = 0.0;
      const double cnt = pin_cnt.at(gx, gy);
      if (cnt > 0.0) {
        const double excess = std::max(0.0, cnt - pin_cap);
        const double q = quantize_demand(config_.pin_penalty * cnt +
                                         0.5 * config_.pin_crowding * excess);
        if (q > 0.0) add = q;
      }
      if (add != 0.0) {
        base_h.at(gx, gy) += add;
        base_v.at(gx, gy) += add;
      }
      applied.at(gx, gy) = add;
      ledger_.mark(gx, gy);
    }
  }

  // --- result maps = pre-expansion snapshot ------------------------------
  CongestionResult result;
  result.maps = RoutingMaps(grid_, capacity_);
  result.maps.dmd_h = base_h;
  result.maps.dmd_v = base_v;

  // --- detour expansion: replay clean regions, re-decide dirty ones ------
  if (config_.enable_detour_expansion) {
    const int R = config_.expand_radius;
    const int W = grid_.nx(), H = grid_.ny();
    int expanded = 0;
    for (std::size_t n = 0; n < n_nets; ++n) {
      const RsmtTree& tree = ledger_.trees()[n];
      DemandLedger::NetEntry& e = ledger_.entry(n);
      const bool net_dirty =
          dirty[n] || e.moves.size() != tree.segments.size();
      if (net_dirty) {
        // The journal belongs to the old tree: void it (its writes may
        // differ from this round's) and decide every segment fresh.
        for (const ExpansionMove& m : e.moves) ledger_.mark_move_cells(m);
        e.moves.clear();
        e.moves.reserve(tree.segments.size());
        for (const RsmtSegment& seg : tree.segments) {
          const RsmtPoint& pa = tree.points[static_cast<std::size_t>(seg.a)];
          const RsmtPoint& pb = tree.points[static_cast<std::size_t>(seg.b)];
          const GcellIndex ga = grid_.index_of(pa.pos.x, pa.pos.y);
          const GcellIndex gb = grid_.index_of(pb.pos.x, pb.pos.y);
          const ExpansionMove mv = decide_segment(
              config_, result.maps, ga, gb, pa.is_steiner(), pb.is_steiner());
          if (mv.moved) {
            ++expanded;
            ledger_.mark_move_cells(mv);
          }
          e.moves.push_back(mv);
          ++redecided;
        }
        continue;
      }
      for (std::size_t i = 0; i < tree.segments.size(); ++i) {
        const RsmtSegment& seg = tree.segments[i];
        const RsmtPoint& pa = tree.points[static_cast<std::size_t>(seg.a)];
        const RsmtPoint& pb = tree.points[static_cast<std::size_t>(seg.b)];
        const GcellIndex ga = grid_.index_of(pa.pos.x, pa.pos.y);
        const GcellIndex gb = grid_.index_of(pb.pos.x, pb.pos.y);
        const bool horizontal = (ga.gy == gb.gy) && (ga.gx != gb.gx);
        const bool vertical = (ga.gx == gb.gx) && (ga.gy != gb.gy);
        if (!horizontal && !vertical) continue;  // never expands
        // Everything this segment reads or writes lies in its span
        // crossed with the +/- expand_radius halo.
        int bx0, bx1, by0, by1;
        if (horizontal) {
          bx0 = std::min(ga.gx, gb.gx);
          bx1 = std::max(ga.gx, gb.gx);
          by0 = std::max(0, ga.gy - R);
          by1 = std::min(H - 1, ga.gy + R);
        } else {
          by0 = std::min(ga.gy, gb.gy);
          by1 = std::max(ga.gy, gb.gy);
          bx0 = std::max(0, ga.gx - R);
          bx1 = std::min(W - 1, ga.gx + R);
        }
        if (!ledger_.box_dirty(bx0, bx1, by0, by1)) {
          DemandLedger::apply_move(e.moves[i], result.maps.dmd_h,
                                   result.maps.dmd_v);
          if (e.moves[i].moved) ++expanded;
          ++replayed;
          continue;
        }
        const ExpansionMove mv = decide_segment(
            config_, result.maps, ga, gb, pa.is_steiner(), pb.is_steiner());
        const ExpansionMove& old = e.moves[i];
        if (mv.moved != old.moved || (mv.moved && mv.dst != old.dst)) {
          ledger_.mark_move_cells(old);
          ledger_.mark_move_cells(mv);
        }
        if (mv.moved) ++expanded;
        e.moves[i] = mv;
        ++redecided;
      }
    }
    result.expanded_segments = expanded;
  }

  result.trees = ledger_.trees();
  return result;
}

std::string CongestionEstimator::save_incremental_state() const {
  BinaryWriter w;
  ledger_.save(w);
  w.put_i32(calls_since_rebuild_);
  return w.take();
}

bool CongestionEstimator::restore_incremental_state(const std::string& blob) {
  if (blob.empty()) {
    ledger_.invalidate();
    calls_since_rebuild_ = 0;
    return false;
  }
  BinaryReader r(blob);
  ledger_.load(r, grid_);
  calls_since_rebuild_ = r.get_i32();
  if (ledger_.initialized() &&
      !ledger_.matches(design_.nets.size(), design_.pins.size(),
                       design_.cells.size())) {
    throw CheckpointError("ledger: restored sizes disagree with design");
  }
  return ledger_.initialized();
}

std::uint64_t CongestionEstimator::config_fingerprint() const {
  BinaryWriter w;
  w.put_f64(config_.rows_per_gcell);
  w.put_f64(config_.pin_penalty);
  w.put_f64(config_.pins_per_site);
  w.put_f64(config_.pin_crowding);
  w.put_u8(config_.enable_rsmt_cache ? 1 : 0);
  w.put_f64(config_.cache_quantum);
  w.put_i32(config_.expand_radius);
  w.put_u8(config_.enable_detour_expansion ? 1 : 0);
  w.put_f64(config_.congested_ratio);
  w.put_u8(config_.enable_incremental ? 1 : 0);
  w.put_i32(config_.full_rebuild_interval);
  w.put_u8(config_.verify_rebuild ? 1 : 0);
  return fnv1a_bytes(w.buffer().data(), w.buffer().size());
}

CongestionResult CongestionEstimator::estimate_incremental() {
  Timer timer;
  const std::size_t n_nets = design_.nets.size();
  const bool can_use_ledger = config_.enable_incremental && cache_.enabled();
  const bool ledger_ok =
      can_use_ledger &&
      ledger_.matches(n_nets, design_.pins.size(), design_.cells.size());
  const bool full =
      !ledger_ok || (config_.full_rebuild_interval > 0 &&
                     calls_since_rebuild_ >= config_.full_rebuild_interval);

  // Delta continuity: this round's ledger marks cover the changes vs the
  // previous result only if that result itself came from the ledger.
  const bool prev_from_ledger = last_from_ledger_;

  CongestionResult result;
  int dirty = 0, replayed = 0, redecided = 0;
  if (!full) {
    std::vector<std::int32_t> dirty_ids;
    result = incremental_pass(dirty, replayed, redecided, &dirty_ids);
    ++calls_since_rebuild_;
    // Clean nets are logical topology-cache hits served by the ledger.
    cache_.add_hits(static_cast<std::uint64_t>(n_nets) -
                    static_cast<std::uint64_t>(dirty));
    result.delta.valid = prev_from_ledger;
    result.delta.dirty_gcells = ledger_.round_cells();
    result.delta.dirty_nets = std::move(dirty_ids);
    result.delta.source_uid = uid_;
    result.delta.revision = ++revision_;
    last_from_ledger_ = true;
  } else if (!can_use_ledger) {
    result = estimate();  // stamps the delta identity itself
  } else if (ledger_ok && config_.verify_rebuild) {
    // Exact-fallback rebuild: run the ledger path first, then rebuild from
    // scratch and check the two are bit-identical (the ledger must never
    // drift). The fresh result is what callers get either way.
    const CongestionResult inc =
        incremental_pass(dirty, replayed, redecided, nullptr);
    result = rebuild_full();
    const bool same = inc.maps.dmd_h.raw() == result.maps.dmd_h.raw() &&
                      inc.maps.dmd_v.raw() == result.maps.dmd_v.raw() &&
                      inc.expanded_segments == result.expanded_segments;
    if (!same) {
      ++incr_stats_.drift_count;
      PUFFER_LOG_ERROR(kTag,
                       "demand ledger drifted from full rebuild "
                       "(checksum %016llx vs %016llx); adopting rebuild",
                       static_cast<unsigned long long>(
                           demand_checksum(inc.maps)),
                       static_cast<unsigned long long>(
                           demand_checksum(result.maps)));
    }
    result.delta.source_uid = uid_;
    result.delta.revision = ++revision_;
    last_from_ledger_ = true;
  } else {
    result = rebuild_full();
    result.delta.source_uid = uid_;
    result.delta.revision = ++revision_;
    last_from_ledger_ = true;
  }

  const double dt = timer.elapsed_seconds();
  ++incr_stats_.calls;
  incr_stats_.last_was_full = full;
  incr_stats_.last_dirty_nets = dirty;
  incr_stats_.last_total_nets = static_cast<int>(n_nets);
  incr_stats_.last_replayed_segments = replayed;
  incr_stats_.last_redecided_segments = redecided;
  incr_stats_.last_time_s = dt;
  if (full) {
    ++incr_stats_.full_rebuilds;
    incr_stats_.full_time_s += dt;
  } else {
    incr_stats_.incremental_time_s += dt;
    incr_stats_.dirty_nets_total += dirty;
    incr_stats_.nets_total += static_cast<std::int64_t>(n_nets);
  }
  return result;
}

}  // namespace puffer
