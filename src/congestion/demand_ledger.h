// Per-net demand ledger for incremental congestion estimation.
//
// Between consecutive padding rounds (and across TPE trials) most nets do
// not move, yet estimate() re-accumulates every net's demand from
// scratch. The ledger records each net's last-applied contribution to the
// pre-expansion demand maps -- its Gcell spans with their quantized
// per-cell demand, the pin-count/penalty layer, and the detour-expansion
// decisions -- so estimate_incremental() can subtract the stale
// contribution and re-apply the fresh one for dirty nets only.
//
// Exactness invariant: every contribution to the demand maps is rounded
// to a multiple of kDemandQuantum (2^-40). Sums of such values are exact
// IEEE-double integer arithmetic while a Gcell's demand stays below
// 2^53 * 2^-40 = 8192 track-equivalents, so addition is associative and
// subtraction cancels exactly -- incremental maintenance is bit-identical
// to a from-scratch accumulation in any order. The estimator enforces the
// invariant by quantizing I/L span demand and the pin-penalty layer;
// expansion moves are +/-1.0 (already exact).
//
// The expansion journal records, per segment, whether the segment moved
// and where. Replay is valid for a segment whose read/write halo
// ([span] x [row +/- expand_radius], or transposed) contains no cell
// whose demand differs from the previous round's evolving state; the
// dirty-cell stamps track exactly that set (seeded with the cells the
// span/penalty updates touched, grown with the cells re-decided moves
// write). See docs/architecture.md for the induction argument.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

#include "grid/gcell.h"
#include "grid/map2d.h"
#include "grid/routing_maps.h"
#include "rsmt/rsmt.h"

namespace puffer {

class BinaryWriter;  // io/checkpoint.h
class BinaryReader;

// All demand contributions are multiples of this quantum (2^-40) so that
// map arithmetic is exact (see file comment).
constexpr double kDemandQuantum = 1.0 / (1024.0 * 1024.0 * 1024.0 * 1024.0);
constexpr double kDemandScale = 1024.0 * 1024.0 * 1024.0 * 1024.0;

inline double quantize_demand(double v) {
  return std::round(v * kDemandScale) * kDemandQuantum;
}

// One two-point segment's Gcell bounding box plus its quantized per-cell
// demand: I-shapes carry 1.0 in their direction, L-shapes the quantized
// average-route probabilities in both.
struct LedgerSpan {
  int x0 = 0, x1 = 0, y0 = 0, y1 = 0;
  double qh = 0.0;  // added to dmd_h at every covered Gcell
  double qv = 0.0;  // added to dmd_v at every covered Gcell
};

// One segment's detour-expansion decision. Geometry (axis, span, source
// row/column, Steiner-connector coordinates) is re-derivable from the
// net's unchanged tree; recording it makes replay self-contained.
struct ExpansionMove {
  bool moved = false;
  bool horizontal = false;  // axis of the I-shaped span
  int lo = 0, hi = 0;       // span extent along the axis
  int src = 0;              // source row (horizontal) / column (vertical)
  int dst = 0;              // target row/column when moved
  // Perpendicular connector coordinates for Steiner endpoints (-1 = pin
  // endpoint, no connector): the column (horizontal) / row (vertical) of
  // each endpoint.
  int conn_a = -1;
  int conn_b = -1;
};

class DemandLedger {
 public:
  struct NetEntry {
    std::uint64_t key = 0;             // quantized-pin key last applied
    std::vector<LedgerSpan> spans;     // applied pre-expansion demand
    std::vector<ExpansionMove> moves;  // applied expansion decisions
  };

  DemandLedger() = default;

  // (Re)initializes all state for a design with `num_nets` nets,
  // `num_pins` pins and `num_cells` cells over `grid`. Clears every entry.
  void reset(std::size_t num_nets, std::size_t num_pins, std::size_t num_cells,
             const GcellGrid& grid);
  // Drops the ledger; the next estimate_incremental() fully rebuilds.
  void invalidate() { initialized_ = false; }
  bool initialized() const { return initialized_; }
  bool matches(std::size_t num_nets, std::size_t num_pins,
               std::size_t num_cells) const {
    return initialized_ && entries_.size() == num_nets &&
           pin_cell_.size() == num_pins && cell_x_.size() == num_cells;
  }

  NetEntry& entry(std::size_t net) { return entries_[net]; }
  std::vector<RsmtTree>& trees() { return trees_; }

  // Pre-expansion demand (spans + pin layer), maintained incrementally.
  Map2D<double>& base_h() { return base_h_; }
  Map2D<double>& base_v() { return base_v_; }

  // Pin layer: last-applied Gcell per pin (flat index, -1 = never), the
  // integer pin counts, and the quantized penalty applied per Gcell.
  std::vector<std::int32_t>& pin_cell() { return pin_cell_; }
  Map2D<double>& pin_count() { return pin_count_; }
  Map2D<double>& applied_penalty() { return applied_penalty_; }

  // Per-cell position snapshot from the last applied round. A net can only
  // be dirty if one of its cells moved (bitwise-identical cell position
  // implies bitwise-identical pin positions and thus an unchanged quantized
  // key), so dirty detection scans cells, not pins.
  std::vector<double>& cell_x() { return cell_x_; }
  std::vector<double>& cell_y() { return cell_y_; }

  // --- dirty-cell tracking (epoch-stamped, no clearing) ------------------
  void begin_round() {
    ++epoch_;
    round_cells_.clear();
  }
  void mark(int gx, int gy) {
    if (dirty_.at(gx, gy) != epoch_) {
      round_cells_.push_back(
          static_cast<std::int32_t>(gy) * static_cast<std::int32_t>(dirty_.nx()) +
          static_cast<std::int32_t>(gx));
    }
    dirty_.at(gx, gy) = epoch_;
    row_dirty_[static_cast<std::size_t>(gy)] = epoch_;
    col_dirty_[static_cast<std::size_t>(gx)] = epoch_;
  }
  // Flat (gy * nx + gx) indices of every Gcell marked since begin_round(),
  // deduplicated in first-mark order. Downstream per-Gcell consumers (the
  // padding feature extractor) use this as the round's change set.
  const std::vector<std::int32_t>& round_cells() const { return round_cells_; }
  void mark_span_cells(const LedgerSpan& s) {
    for (int gy = s.y0; gy <= s.y1; ++gy) {
      for (int gx = s.x0; gx <= s.x1; ++gx) mark(gx, gy);
    }
  }
  // Marks every cell a recorded move writes (span source + target line and
  // Steiner connectors). No-op for non-moves.
  void mark_move_cells(const ExpansionMove& m);
  // True when [x0,x1] x [y0,y1] (clamped by the caller) holds a cell
  // marked this round. Row/column summaries reject clean boxes in O(extent).
  bool box_dirty(int x0, int x1, int y0, int y1) const;

  // --- serialization (trial-orchestration checkpoints) -------------------
  // Writes the full applied state: entries (keys/spans/moves), trees, base
  // maps, pin layer and the cell-position snapshot. Dirty stamps are
  // transient round state and are NOT serialized; load() resets them, so
  // the first post-restore round sees an all-clean grid -- exactly the
  // state an uninterrupted flow has after its last applied round.
  void save(BinaryWriter& w) const;
  // Restores state saved by save(); throws CheckpointError when the blob
  // is malformed or its grid dimensions disagree with `grid`.
  void load(BinaryReader& r, const GcellGrid& grid);

  // --- exact replay helpers ----------------------------------------------
  static void apply_span(const LedgerSpan& s, Map2D<double>& dmd_h,
                         Map2D<double>& dmd_v, double sign);
  // Re-applies a recorded move's demand deltas (+1/-1 lines, connectors).
  static void apply_move(const ExpansionMove& m, Map2D<double>& dmd_h,
                         Map2D<double>& dmd_v);

 private:
  bool initialized_ = false;
  std::vector<NetEntry> entries_;
  std::vector<RsmtTree> trees_;
  Map2D<double> base_h_, base_v_;
  std::vector<std::int32_t> pin_cell_;
  Map2D<double> pin_count_;
  Map2D<double> applied_penalty_;
  std::vector<double> cell_x_, cell_y_;
  Map2D<std::uint32_t> dirty_;
  std::vector<std::uint32_t> row_dirty_, col_dirty_;
  std::vector<std::int32_t> round_cells_;
  std::uint32_t epoch_ = 0;
};

}  // namespace puffer
