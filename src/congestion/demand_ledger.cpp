#include "congestion/demand_ledger.h"

#include <algorithm>

namespace puffer {

void DemandLedger::reset(std::size_t num_nets, std::size_t num_pins,
                         std::size_t num_cells, const GcellGrid& grid) {
  entries_.assign(num_nets, NetEntry{});
  trees_.assign(num_nets, RsmtTree{});
  base_h_ = Map2D<double>(grid.nx(), grid.ny());
  base_v_ = Map2D<double>(grid.nx(), grid.ny());
  pin_cell_.assign(num_pins, -1);
  cell_x_.assign(num_cells, 0.0);
  cell_y_.assign(num_cells, 0.0);
  pin_count_ = Map2D<double>(grid.nx(), grid.ny());
  applied_penalty_ = Map2D<double>(grid.nx(), grid.ny());
  dirty_ = Map2D<std::uint32_t>(grid.nx(), grid.ny());
  row_dirty_.assign(static_cast<std::size_t>(grid.ny()), 0);
  col_dirty_.assign(static_cast<std::size_t>(grid.nx()), 0);
  epoch_ = 0;
  initialized_ = true;
}

void DemandLedger::mark_move_cells(const ExpansionMove& m) {
  if (!m.moved) return;
  if (m.horizontal) {
    for (int gx = m.lo; gx <= m.hi; ++gx) {
      mark(gx, m.src);
      mark(gx, m.dst);
    }
    const int ylo = std::min(m.src, m.dst), yhi = std::max(m.src, m.dst);
    for (const int conn : {m.conn_a, m.conn_b}) {
      if (conn < 0) continue;
      for (int gy = ylo; gy <= yhi; ++gy) mark(conn, gy);
    }
  } else {
    for (int gy = m.lo; gy <= m.hi; ++gy) {
      mark(m.src, gy);
      mark(m.dst, gy);
    }
    const int xlo = std::min(m.src, m.dst), xhi = std::max(m.src, m.dst);
    for (const int conn : {m.conn_a, m.conn_b}) {
      if (conn < 0) continue;
      for (int gx = xlo; gx <= xhi; ++gx) mark(gx, conn);
    }
  }
}

bool DemandLedger::box_dirty(int x0, int x1, int y0, int y1) const {
  bool any_row = false;
  for (int gy = y0; gy <= y1 && !any_row; ++gy) {
    any_row = row_dirty_[static_cast<std::size_t>(gy)] == epoch_;
  }
  if (!any_row) return false;
  bool any_col = false;
  for (int gx = x0; gx <= x1 && !any_col; ++gx) {
    any_col = col_dirty_[static_cast<std::size_t>(gx)] == epoch_;
  }
  if (!any_col) return false;
  for (int gy = y0; gy <= y1; ++gy) {
    for (int gx = x0; gx <= x1; ++gx) {
      if (dirty_.at(gx, gy) == epoch_) return true;
    }
  }
  return false;
}

void DemandLedger::apply_span(const LedgerSpan& s, Map2D<double>& dmd_h,
                              Map2D<double>& dmd_v, double sign) {
  const double qh = sign * s.qh, qv = sign * s.qv;
  for (int gy = s.y0; gy <= s.y1; ++gy) {
    for (int gx = s.x0; gx <= s.x1; ++gx) {
      if (s.qh != 0.0) dmd_h.at(gx, gy) += qh;
      if (s.qv != 0.0) dmd_v.at(gx, gy) += qv;
    }
  }
}

void DemandLedger::apply_move(const ExpansionMove& m, Map2D<double>& dmd_h,
                              Map2D<double>& dmd_v) {
  if (!m.moved) return;
  if (m.horizontal) {
    for (int gx = m.lo; gx <= m.hi; ++gx) {
      dmd_h.at(gx, m.src) -= 1.0;
      dmd_h.at(gx, m.dst) += 1.0;
    }
    const int ylo = std::min(m.src, m.dst), yhi = std::max(m.src, m.dst);
    for (const int conn : {m.conn_a, m.conn_b}) {
      if (conn < 0) continue;
      for (int gy = ylo; gy <= yhi; ++gy) dmd_v.at(conn, gy) += 1.0;
    }
  } else {
    for (int gy = m.lo; gy <= m.hi; ++gy) {
      dmd_v.at(m.src, gy) -= 1.0;
      dmd_v.at(m.dst, gy) += 1.0;
    }
    const int xlo = std::min(m.src, m.dst), xhi = std::max(m.src, m.dst);
    for (const int conn : {m.conn_a, m.conn_b}) {
      if (conn < 0) continue;
      for (int gx = xlo; gx <= xhi; ++gx) dmd_h.at(gx, conn) += 1.0;
    }
  }
}

}  // namespace puffer
