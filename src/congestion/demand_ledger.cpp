#include "congestion/demand_ledger.h"

#include <algorithm>

#include "io/checkpoint.h"

namespace puffer {

namespace {

constexpr std::uint32_t kLedgerVersion = 1;

void put_map(BinaryWriter& w, const Map2D<double>& m) {
  w.put_i32(m.nx());
  w.put_i32(m.ny());
  w.put_f64_vec(m.raw());
}

Map2D<double> get_map(BinaryReader& r) {
  const int nx = r.get_i32();
  const int ny = r.get_i32();
  std::vector<double> data = r.get_f64_vec();
  if (nx < 0 || ny < 0 ||
      data.size() != static_cast<std::size_t>(nx) *
                         static_cast<std::size_t>(ny)) {
    throw CheckpointError("ledger: map dimensions disagree with payload");
  }
  Map2D<double> m(nx, ny);
  m.raw() = std::move(data);
  return m;
}

}  // namespace

void DemandLedger::reset(std::size_t num_nets, std::size_t num_pins,
                         std::size_t num_cells, const GcellGrid& grid) {
  entries_.assign(num_nets, NetEntry{});
  trees_.assign(num_nets, RsmtTree{});
  base_h_ = Map2D<double>(grid.nx(), grid.ny());
  base_v_ = Map2D<double>(grid.nx(), grid.ny());
  pin_cell_.assign(num_pins, -1);
  cell_x_.assign(num_cells, 0.0);
  cell_y_.assign(num_cells, 0.0);
  pin_count_ = Map2D<double>(grid.nx(), grid.ny());
  applied_penalty_ = Map2D<double>(grid.nx(), grid.ny());
  dirty_ = Map2D<std::uint32_t>(grid.nx(), grid.ny());
  row_dirty_.assign(static_cast<std::size_t>(grid.ny()), 0);
  col_dirty_.assign(static_cast<std::size_t>(grid.nx()), 0);
  round_cells_.clear();
  epoch_ = 0;
  initialized_ = true;
}

void DemandLedger::mark_move_cells(const ExpansionMove& m) {
  if (!m.moved) return;
  if (m.horizontal) {
    for (int gx = m.lo; gx <= m.hi; ++gx) {
      mark(gx, m.src);
      mark(gx, m.dst);
    }
    const int ylo = std::min(m.src, m.dst), yhi = std::max(m.src, m.dst);
    for (const int conn : {m.conn_a, m.conn_b}) {
      if (conn < 0) continue;
      for (int gy = ylo; gy <= yhi; ++gy) mark(conn, gy);
    }
  } else {
    for (int gy = m.lo; gy <= m.hi; ++gy) {
      mark(m.src, gy);
      mark(m.dst, gy);
    }
    const int xlo = std::min(m.src, m.dst), xhi = std::max(m.src, m.dst);
    for (const int conn : {m.conn_a, m.conn_b}) {
      if (conn < 0) continue;
      for (int gx = xlo; gx <= xhi; ++gx) mark(gx, conn);
    }
  }
}

bool DemandLedger::box_dirty(int x0, int x1, int y0, int y1) const {
  bool any_row = false;
  for (int gy = y0; gy <= y1 && !any_row; ++gy) {
    any_row = row_dirty_[static_cast<std::size_t>(gy)] == epoch_;
  }
  if (!any_row) return false;
  bool any_col = false;
  for (int gx = x0; gx <= x1 && !any_col; ++gx) {
    any_col = col_dirty_[static_cast<std::size_t>(gx)] == epoch_;
  }
  if (!any_col) return false;
  for (int gy = y0; gy <= y1; ++gy) {
    for (int gx = x0; gx <= x1; ++gx) {
      if (dirty_.at(gx, gy) == epoch_) return true;
    }
  }
  return false;
}

void DemandLedger::save(BinaryWriter& w) const {
  w.put_u32(kLedgerVersion);
  w.put_u8(initialized_ ? 1 : 0);
  if (!initialized_) return;
  w.put_u64(entries_.size());
  for (const NetEntry& e : entries_) {
    w.put_u64(e.key);
    w.put_u64(e.spans.size());
    for (const LedgerSpan& s : e.spans) {
      w.put_i32(s.x0);
      w.put_i32(s.x1);
      w.put_i32(s.y0);
      w.put_i32(s.y1);
      w.put_f64(s.qh);
      w.put_f64(s.qv);
    }
    w.put_u64(e.moves.size());
    for (const ExpansionMove& m : e.moves) {
      w.put_u8(m.moved ? 1 : 0);
      w.put_u8(m.horizontal ? 1 : 0);
      w.put_i32(m.lo);
      w.put_i32(m.hi);
      w.put_i32(m.src);
      w.put_i32(m.dst);
      w.put_i32(m.conn_a);
      w.put_i32(m.conn_b);
    }
  }
  w.put_u64(trees_.size());
  for (const RsmtTree& t : trees_) {
    w.put_u64(t.points.size());
    for (const RsmtPoint& p : t.points) {
      w.put_f64(p.pos.x);
      w.put_f64(p.pos.y);
      w.put_i32(p.pin);
    }
    w.put_u64(t.segments.size());
    for (const RsmtSegment& s : t.segments) {
      w.put_i32(s.a);
      w.put_i32(s.b);
    }
    w.put_u64(t.pin_point.size());
    for (int pp : t.pin_point) w.put_i32(pp);
  }
  put_map(w, base_h_);
  put_map(w, base_v_);
  w.put_u64(pin_cell_.size());
  for (std::int32_t pc : pin_cell_) w.put_i32(pc);
  put_map(w, pin_count_);
  put_map(w, applied_penalty_);
  w.put_f64_vec(cell_x_);
  w.put_f64_vec(cell_y_);
}

void DemandLedger::load(BinaryReader& r, const GcellGrid& grid) {
  const std::uint32_t version = r.get_u32();
  if (version != kLedgerVersion) {
    throw CheckpointError("ledger: unsupported version " +
                          std::to_string(version));
  }
  if (r.get_u8() == 0) {
    initialized_ = false;
    return;
  }
  const std::uint64_t n_nets = r.get_u64();
  entries_.assign(static_cast<std::size_t>(n_nets), NetEntry{});
  for (NetEntry& e : entries_) {
    e.key = r.get_u64();
    const std::uint64_t n_spans = r.get_u64();
    e.spans.resize(static_cast<std::size_t>(n_spans));
    for (LedgerSpan& s : e.spans) {
      s.x0 = r.get_i32();
      s.x1 = r.get_i32();
      s.y0 = r.get_i32();
      s.y1 = r.get_i32();
      s.qh = r.get_f64();
      s.qv = r.get_f64();
    }
    const std::uint64_t n_moves = r.get_u64();
    e.moves.resize(static_cast<std::size_t>(n_moves));
    for (ExpansionMove& m : e.moves) {
      m.moved = r.get_u8() != 0;
      m.horizontal = r.get_u8() != 0;
      m.lo = r.get_i32();
      m.hi = r.get_i32();
      m.src = r.get_i32();
      m.dst = r.get_i32();
      m.conn_a = r.get_i32();
      m.conn_b = r.get_i32();
    }
  }
  const std::uint64_t n_trees = r.get_u64();
  if (n_trees != n_nets) {
    throw CheckpointError("ledger: tree/entry count mismatch");
  }
  trees_.assign(static_cast<std::size_t>(n_trees), RsmtTree{});
  for (RsmtTree& t : trees_) {
    const std::uint64_t n_points = r.get_u64();
    t.points.resize(static_cast<std::size_t>(n_points));
    for (RsmtPoint& p : t.points) {
      p.pos.x = r.get_f64();
      p.pos.y = r.get_f64();
      p.pin = r.get_i32();
    }
    const std::uint64_t n_segs = r.get_u64();
    t.segments.resize(static_cast<std::size_t>(n_segs));
    for (RsmtSegment& s : t.segments) {
      s.a = r.get_i32();
      s.b = r.get_i32();
    }
    const std::uint64_t n_pp = r.get_u64();
    t.pin_point.resize(static_cast<std::size_t>(n_pp));
    for (int& pp : t.pin_point) pp = r.get_i32();
  }
  base_h_ = get_map(r);
  base_v_ = get_map(r);
  const std::uint64_t n_pins = r.get_u64();
  pin_cell_.resize(static_cast<std::size_t>(n_pins));
  for (std::int32_t& pc : pin_cell_) pc = r.get_i32();
  pin_count_ = get_map(r);
  applied_penalty_ = get_map(r);
  cell_x_ = r.get_f64_vec();
  cell_y_ = r.get_f64_vec();
  if (base_h_.nx() != grid.nx() || base_h_.ny() != grid.ny() ||
      base_v_.nx() != grid.nx() || base_v_.ny() != grid.ny() ||
      pin_count_.nx() != grid.nx() || pin_count_.ny() != grid.ny() ||
      applied_penalty_.nx() != grid.nx() ||
      applied_penalty_.ny() != grid.ny()) {
    throw CheckpointError("ledger: grid dimensions disagree with estimator");
  }
  if (cell_x_.size() != cell_y_.size()) {
    throw CheckpointError("ledger: cell snapshot arrays disagree");
  }
  // Fresh transient round state (see save() comment).
  dirty_ = Map2D<std::uint32_t>(grid.nx(), grid.ny());
  row_dirty_.assign(static_cast<std::size_t>(grid.ny()), 0);
  col_dirty_.assign(static_cast<std::size_t>(grid.nx()), 0);
  round_cells_.clear();
  epoch_ = 0;
  initialized_ = true;
}

void DemandLedger::apply_span(const LedgerSpan& s, Map2D<double>& dmd_h,
                              Map2D<double>& dmd_v, double sign) {
  const double qh = sign * s.qh, qv = sign * s.qv;
  for (int gy = s.y0; gy <= s.y1; ++gy) {
    for (int gx = s.x0; gx <= s.x1; ++gx) {
      if (s.qh != 0.0) dmd_h.at(gx, gy) += qh;
      if (s.qv != 0.0) dmd_v.at(gx, gy) += qv;
    }
  }
}

void DemandLedger::apply_move(const ExpansionMove& m, Map2D<double>& dmd_h,
                              Map2D<double>& dmd_v) {
  if (!m.moved) return;
  if (m.horizontal) {
    for (int gx = m.lo; gx <= m.hi; ++gx) {
      dmd_h.at(gx, m.src) -= 1.0;
      dmd_h.at(gx, m.dst) += 1.0;
    }
    const int ylo = std::min(m.src, m.dst), yhi = std::max(m.src, m.dst);
    for (const int conn : {m.conn_a, m.conn_b}) {
      if (conn < 0) continue;
      for (int gy = ylo; gy <= yhi; ++gy) dmd_v.at(conn, gy) += 1.0;
    }
  } else {
    for (int gy = m.lo; gy <= m.hi; ++gy) {
      dmd_v.at(m.src, gy) -= 1.0;
      dmd_v.at(m.dst, gy) += 1.0;
    }
    const int xlo = std::min(m.src, m.dst), xhi = std::max(m.src, m.dst);
    for (const int conn : {m.conn_a, m.conn_b}) {
      if (conn < 0) continue;
      for (int gx = xlo; gx <= xhi; ++gx) dmd_h.at(gx, conn) += 1.0;
    }
  }
}

}  // namespace puffer
