// Basic planar geometry types used across the placement stack.
//
// Coordinates are in database units (DBU); doubles are used throughout the
// analytic placer while the legalizer snaps to integer site grids.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace puffer {

struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double px, double py) : x(px), y(py) {}

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
};

// Manhattan distance between two points.
inline double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

// Closed interval [lo, hi]; empty when hi < lo.
struct Interval {
  double lo = 0.0;
  double hi = -1.0;

  Interval() = default;
  Interval(double l, double h) : lo(l), hi(h) {}

  bool empty() const { return hi < lo; }
  double length() const { return empty() ? 0.0 : hi - lo; }
  bool contains(double v) const { return v >= lo && v <= hi; }

  Interval intersect(const Interval& o) const {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }
};

// Axis-aligned rectangle with [xlo,xhi] x [ylo,yhi] extents.
struct Rect {
  double xlo = 0.0;
  double ylo = 0.0;
  double xhi = -1.0;
  double yhi = -1.0;

  Rect() = default;
  Rect(double x0, double y0, double x1, double y1)
      : xlo(x0), ylo(y0), xhi(x1), yhi(y1) {}

  static Rect bounding(const Point& a, const Point& b) {
    return {std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
            std::max(a.y, b.y)};
  }

  bool empty() const { return xhi < xlo || yhi < ylo; }
  double width() const { return empty() ? 0.0 : xhi - xlo; }
  double height() const { return empty() ? 0.0 : yhi - ylo; }
  double area() const { return width() * height(); }
  Point center() const { return {(xlo + xhi) * 0.5, (ylo + yhi) * 0.5}; }

  bool contains(const Point& p) const {
    return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
  }

  Rect intersect(const Rect& o) const {
    return {std::max(xlo, o.xlo), std::max(ylo, o.ylo), std::min(xhi, o.xhi),
            std::min(yhi, o.yhi)};
  }

  // Area of overlap with another rectangle (0 when disjoint).
  double overlap_area(const Rect& o) const {
    const Rect r = intersect(o);
    return r.empty() ? 0.0 : r.area();
  }

  // Grows the rectangle by `m` on every side (CNN-inspired feature margin).
  Rect expanded(double m) const { return {xlo - m, ylo - m, xhi + m, yhi + m}; }

  // Clamp to another rectangle's extents.
  Rect clamped(const Rect& bounds) const { return intersect(bounds); }

  void include(const Point& p) {
    if (empty()) {
      xlo = xhi = p.x;
      ylo = yhi = p.y;
    } else {
      xlo = std::min(xlo, p.x);
      xhi = std::max(xhi, p.x);
      ylo = std::min(ylo, p.y);
      yhi = std::max(yhi, p.y);
    }
  }
};

std::ostream& operator<<(std::ostream& os, const Point& p);
std::ostream& operator<<(std::ostream& os, const Rect& r);

// Clamps v into [lo, hi].
inline double clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

}  // namespace puffer
