#include "geometry/geometry.h"

namespace puffer {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.xlo << ", " << r.ylo << " - " << r.xhi << ", " << r.yhi
            << ']';
}

}  // namespace puffer
