#include "explore/param_space.h"

#include <algorithm>
#include <cmath>

namespace puffer {

double ParamSpec::mid() const {
  switch (kind) {
    case ParamKind::kContinuous:
      return (lo + hi) * 0.5;
    case ParamKind::kInteger:
      return std::round((lo + hi) * 0.5);
    case ParamKind::kCategorical:
      return std::floor((hi - 1.0) * 0.5);
  }
  return lo;
}

double ParamSpec::legalize(double v) const {
  switch (kind) {
    case ParamKind::kContinuous:
      return std::clamp(v, lo, hi);
    case ParamKind::kInteger:
      return std::clamp(std::round(v), std::round(lo), std::round(hi));
    case ParamKind::kCategorical: {
      const double max_idx = std::max(0.0, hi - 1.0);
      return std::clamp(std::round(v), 0.0, max_idx);
    }
  }
  return v;
}

Assignment mid_assignment(const std::vector<ParamSpec>& specs) {
  Assignment a;
  a.reserve(specs.size());
  for (const ParamSpec& s : specs) a.push_back(s.mid());
  return a;
}

std::vector<ParamSpec> update_param_ranges(const std::vector<ParamSpec>& specs,
                                           const std::vector<Observation>& obs) {
  if (obs.size() < 4) return specs;
  std::vector<const Observation*> sorted;
  sorted.reserve(obs.size());
  for (const Observation& o : obs) sorted.push_back(&o);
  std::sort(sorted.begin(), sorted.end(),
            [](const Observation* a, const Observation* b) {
              return a->loss < b->loss;
            });
  const std::size_t elite = std::max<std::size_t>(2, sorted.size() / 4);

  std::vector<ParamSpec> out = specs;
  for (std::size_t d = 0; d < specs.size(); ++d) {
    if (specs[d].kind == ParamKind::kCategorical) continue;
    double lo = sorted[0]->x[d], hi = sorted[0]->x[d];
    for (std::size_t i = 0; i < elite; ++i) {
      lo = std::min(lo, sorted[i]->x[d]);
      hi = std::max(hi, sorted[i]->x[d]);
    }
    const double margin = 0.15 * std::max(hi - lo, 0.05 * (specs[d].hi - specs[d].lo));
    out[d].lo = std::max(specs[d].lo, lo - margin);
    out[d].hi = std::min(specs[d].hi, hi + margin);
    if (out[d].hi < out[d].lo) std::swap(out[d].lo, out[d].hi);
  }
  return out;
}

}  // namespace puffer
