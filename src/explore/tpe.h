// Tree-structured Parzen estimator (TPE) sampler, after Bergstra et
// al. [19], used as the getParam step of the SMBO loop in Algorithm 2.
//
// Observations are split at the gamma quantile of loss into a "good" and
// a "bad" set. Each continuous/integer dimension is modelled by Parzen
// mixtures l(x) (good) and g(x) (bad) of Gaussians centered at the
// observed values, with per-point bandwidths from neighbour spacing;
// categorical dimensions use smoothed category frequencies. Candidates
// are drawn from l and the one maximizing l(x)/g(x) -- equivalently the
// expected improvement -- is suggested.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "explore/param_space.h"

namespace puffer {

struct TpeConfig {
  double gamma = 0.25;    // good-set quantile
  int n_candidates = 24;  // EI candidates per suggestion
  int n_startup = 8;      // random suggestions before modelling starts
};

class TpeSampler {
 public:
  TpeSampler(std::vector<ParamSpec> specs, TpeConfig config, std::uint64_t seed);

  // Suggests the next assignment given the history (may be empty).
  Assignment suggest(const std::vector<Observation>& obs);

  const std::vector<ParamSpec>& specs() const { return specs_; }
  // Replaces the search ranges (Algorithm 2's range update between runs).
  void set_specs(std::vector<ParamSpec> specs) { specs_ = std::move(specs); }

 private:
  Assignment random_assignment();

  std::vector<ParamSpec> specs_;
  TpeConfig config_;
  Rng rng_;
};

}  // namespace puffer
