#include "explore/tpe.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace puffer {

TpeSampler::TpeSampler(std::vector<ParamSpec> specs, TpeConfig config,
                       std::uint64_t seed)
    : specs_(std::move(specs)), config_(config), rng_(seed) {}

Assignment TpeSampler::random_assignment() {
  Assignment a(specs_.size());
  for (std::size_t d = 0; d < specs_.size(); ++d) {
    const ParamSpec& s = specs_[d];
    a[d] = s.legalize(rng_.uniform(s.lo, s.hi + (s.kind == ParamKind::kCategorical ? 0.0 : 0.0)));
    if (s.kind == ParamKind::kCategorical) {
      a[d] = static_cast<double>(rng_.uniform_int(0, static_cast<std::int64_t>(s.hi) - 1));
    }
  }
  return a;
}

namespace {

double gauss_pdf(double x, double mu, double sigma) {
  const double z = (x - mu) / sigma;
  return std::exp(-0.5 * z * z) / (sigma * std::sqrt(2.0 * std::numbers::pi));
}

// Per-dimension Parzen mixture built over a set of observed values.
struct Parzen {
  std::vector<double> mus;
  std::vector<double> sigmas;
  double lo, hi;

  Parzen(std::vector<double> values, double range_lo, double range_hi)
      : mus(std::move(values)), lo(range_lo), hi(range_hi) {
    std::sort(mus.begin(), mus.end());
    const double range = std::max(hi - lo, 1e-12);
    sigmas.resize(mus.size());
    for (std::size_t i = 0; i < mus.size(); ++i) {
      // Bandwidth: the larger gap to a neighbour, clamped to sane bounds.
      const double left = i > 0 ? mus[i] - mus[i - 1] : range;
      const double right = i + 1 < mus.size() ? mus[i + 1] - mus[i] : range;
      sigmas[i] = std::clamp(std::max(left, right), range / 50.0, range);
    }
  }

  double pdf(double x) const {
    if (mus.empty()) return 1.0 / std::max(hi - lo, 1e-12);
    double p = 0.0;
    for (std::size_t i = 0; i < mus.size(); ++i) {
      p += gauss_pdf(x, mus[i], sigmas[i]);
    }
    // Blend in a uniform floor so g(x) never vanishes.
    const double uniform = 1.0 / std::max(hi - lo, 1e-12);
    return 0.95 * p / static_cast<double>(mus.size()) + 0.05 * uniform;
  }

  double sample(Rng& rng) const {
    if (mus.empty()) return rng.uniform(lo, hi);
    const std::size_t i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mus.size()) - 1));
    return rng.normal(mus[i], sigmas[i]);
  }
};

// Smoothed categorical frequencies.
struct CategoricalModel {
  std::vector<double> probs;

  CategoricalModel(const std::vector<double>& values, int n_cats) {
    probs.assign(static_cast<std::size_t>(std::max(1, n_cats)), 1.0);
    for (double v : values) {
      const int idx = static_cast<int>(v);
      if (idx >= 0 && idx < n_cats) probs[static_cast<std::size_t>(idx)] += 1.0;
    }
    double sum = 0.0;
    for (double p : probs) sum += p;
    for (double& p : probs) p /= sum;
  }

  double pdf(double x) const {
    const int idx = static_cast<int>(x);
    if (idx < 0 || idx >= static_cast<int>(probs.size())) return 1e-12;
    return probs[static_cast<std::size_t>(idx)];
  }

  double sample(Rng& rng) const {
    double u = rng.uniform(0.0, 1.0);
    for (std::size_t i = 0; i < probs.size(); ++i) {
      u -= probs[i];
      if (u <= 0.0) return static_cast<double>(i);
    }
    return static_cast<double>(probs.size() - 1);
  }
};

}  // namespace

Assignment TpeSampler::suggest(const std::vector<Observation>& obs) {
  if (static_cast<int>(obs.size()) < config_.n_startup) {
    return random_assignment();
  }

  // Split at the gamma quantile of loss.
  std::vector<const Observation*> sorted;
  sorted.reserve(obs.size());
  for (const Observation& o : obs) sorted.push_back(&o);
  std::sort(sorted.begin(), sorted.end(),
            [](const Observation* a, const Observation* b) {
              return a->loss < b->loss;
            });
  const std::size_t n_good = std::max<std::size_t>(
      2, static_cast<std::size_t>(config_.gamma * static_cast<double>(sorted.size())));

  Assignment best;
  double best_score = -1e300;
  for (int cand = 0; cand < config_.n_candidates; ++cand) {
    Assignment a(specs_.size());
    double score = 0.0;
    for (std::size_t d = 0; d < specs_.size(); ++d) {
      const ParamSpec& s = specs_[d];
      std::vector<double> good_v, bad_v;
      for (std::size_t i = 0; i < sorted.size(); ++i) {
        (i < n_good ? good_v : bad_v).push_back(sorted[i]->x[d]);
      }
      if (s.kind == ParamKind::kCategorical) {
        const int n_cats = static_cast<int>(s.hi);
        const CategoricalModel good(good_v, n_cats);
        const CategoricalModel bad(bad_v, n_cats);
        const double v = good.sample(rng_);
        a[d] = s.legalize(v);
        score += std::log(good.pdf(a[d])) - std::log(bad.pdf(a[d]));
      } else {
        const Parzen good(std::move(good_v), s.lo, s.hi);
        const Parzen bad(std::move(bad_v), s.lo, s.hi);
        double v = good.sample(rng_);
        v = s.legalize(v);
        a[d] = v;
        score += std::log(std::max(good.pdf(v), 1e-300)) -
                 std::log(std::max(bad.pdf(v), 1e-300));
      }
    }
    if (score > best_score) {
      best_score = score;
      best = std::move(a);
    }
  }
  return best;
}

}  // namespace puffer
