// Strategy-parameter space description for Bayesian strategy exploration
// (paper SS III-C). Parameters may be continuous values in formulas,
// integers, or categorical indices selecting among alternative strategies.
// Internally every parameter is carried as a double; integers are rounded
// and categoricals are indices into their category count.
#pragma once

#include <string>
#include <vector>

namespace puffer {

enum class ParamKind { kContinuous, kInteger, kCategorical };

struct ParamSpec {
  std::string name;
  ParamKind kind = ParamKind::kContinuous;
  double lo = 0.0;
  double hi = 1.0;  // categorical: hi = number of categories (exclusive)

  // Midpoint of the range (categorical: middle category), used when a
  // parameter group is held fixed during grouped exploration.
  double mid() const;
  // Clamp / round a raw value into the legal domain.
  double legalize(double v) const;
};

// A full assignment, index-aligned with the spec vector.
using Assignment = std::vector<double>;

struct Observation {
  Assignment x;
  double loss = 0.0;
};

// Midpoint assignment for a whole space.
Assignment mid_assignment(const std::vector<ParamSpec>& specs);

// Shrinks each spec's range around the elite observations (the
// updateParamRange step of Algorithm 2): the new range spans the best
// quarter of observations per dimension, expanded by 15% and clipped to
// the old range. Categorical ranges are left unchanged.
std::vector<ParamSpec> update_param_ranges(const std::vector<ParamSpec>& specs,
                                           const std::vector<Observation>& obs);

}  // namespace puffer
