// SMBO-based parameter and strategy exploration
// (paper SS III-C, Algorithms 2 and 3).
//
// Algorithm 2 (parameter exploration): a TPE-driven SMBO loop over a
// parameter list within given ranges, stopping when the best result has
// not improved for EC consecutive evaluations or after TC evaluations;
// afterwards the ranges are tightened around the elite observations.
//
// Algorithm 3 (strategy exploration): one global exploration over all
// parameters to get rough ranges, then parameters are split into groups
// by relevance and each group is explored with the others pinned to the
// middle of their current ranges, repeating until every group stops
// early (or the outer budget runs out). The final configuration takes
// the median of the resulting ranges.
//
// The evaluator is a black box (for PUFFER: run placement + global
// routing and return the total overflow ratio), so this module is usable
// for any expensive derivative-free tuning problem.
#pragma once

#include <cstdint>
#include <functional>

#include "explore/tpe.h"

namespace puffer {

using EvalFn = std::function<double(const Assignment&)>;

struct ExploreConfig {
  int time_limit = 40;  // TC: max evaluations per parameter exploration
  int early_stop = 10;  // EC: stop after this many non-improving evals
  int outer_rounds = 3; // outer TC of Algorithm 3
  // Candidates suggested (sequentially, so the sampler stream is
  // deterministic) and evaluated (concurrently via the parallel runtime)
  // per SMBO round. 1 = the exact serial Algorithm-2 loop. Larger batches
  // trade some sample efficiency (candidates within a batch cannot see
  // each other's losses) for wall-clock when evaluations dominate.
  // Observations are folded in candidate order, so best/best_loss and the
  // early-stop point are identical for any PUFFER_THREADS value.
  // Concurrent evaluators must be thread-safe and must not mutate global
  // state (e.g. a PufferFlow evaluator must keep num_threads = 0 so it
  // does not resize the shared worker pool mid-batch).
  int batch_size = 1;
  TpeConfig tpe;
  std::uint64_t seed = 1234;
};

// Validate-and-clamp, matching validate_router_config /
// validate_legalize_config: throws std::invalid_argument on nonsensical
// values (non-positive trial counts, batch_size < 1, a good-set quantile
// outside (0, 1), bad candidate counts). Called by explore_parameters()
// and at StrategyExplorer construction.
ExploreConfig validate_explore_config(ExploreConfig config);

struct ParamExplorationOutcome {
  bool early_stopped = false;  // Algorithm 2's return (npc > EC)
  std::vector<Observation> observations;
  Assignment best;
  double best_loss = 0.0;
  std::vector<ParamSpec> ranges;  // updated ranges (Line 14)
};

// Algorithm 2 over the full spec vector.
ParamExplorationOutcome explore_parameters(const std::vector<ParamSpec>& specs,
                                           const EvalFn& eval,
                                           const ExploreConfig& config);

class StrategyExplorer {
 public:
  // `groups` partitions spec indices by relevance; ungrouped indices form
  // implicit singleton groups.
  StrategyExplorer(std::vector<ParamSpec> specs,
                   std::vector<std::vector<int>> groups, EvalFn eval,
                   ExploreConfig config);

  // Runs Algorithm 3; returns the final configuration.
  Assignment run();

  // All evaluations performed, in order (for convergence plots).
  const std::vector<Observation>& history() const { return history_; }
  // Best evaluation seen.
  const Observation& best() const { return best_; }
  const std::vector<ParamSpec>& final_ranges() const { return specs_; }

 private:
  std::vector<ParamSpec> specs_;
  std::vector<std::vector<int>> groups_;
  EvalFn eval_;
  ExploreConfig config_;
  std::vector<Observation> history_;
  Observation best_;
};

}  // namespace puffer
