#include "explore/strategy_explorer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/logger.h"
#include "common/parallel.h"

namespace puffer {

namespace {
constexpr const char* kTag = "explore";
}

ExploreConfig validate_explore_config(ExploreConfig config) {
  if (config.time_limit < 1) {
    throw std::invalid_argument(
        "ExploreConfig.time_limit must be a positive trial count");
  }
  if (config.early_stop < 1) {
    throw std::invalid_argument("ExploreConfig.early_stop must be positive");
  }
  if (config.outer_rounds < 1) {
    throw std::invalid_argument("ExploreConfig.outer_rounds must be positive");
  }
  if (config.batch_size < 1) {
    throw std::invalid_argument("ExploreConfig.batch_size must be >= 1");
  }
  if (!std::isfinite(config.tpe.gamma) || config.tpe.gamma <= 0.0 ||
      config.tpe.gamma >= 1.0) {
    throw std::invalid_argument(
        "ExploreConfig.tpe.gamma (good-set quantile) must lie in (0, 1)");
  }
  if (config.tpe.n_candidates < 1) {
    throw std::invalid_argument(
        "ExploreConfig.tpe.n_candidates must be positive");
  }
  if (config.tpe.n_startup < 0) {
    throw std::invalid_argument(
        "ExploreConfig.tpe.n_startup must be non-negative");
  }
  return config;
}

ParamExplorationOutcome explore_parameters(const std::vector<ParamSpec>& specs,
                                           const EvalFn& eval,
                                           const ExploreConfig& raw_config) {
  const ExploreConfig config = validate_explore_config(raw_config);
  ParamExplorationOutcome out;
  out.best_loss = std::numeric_limits<double>::max();
  TpeSampler sampler(specs, config.tpe, config.seed);

  const int batch = std::max(1, config.batch_size);
  int tc = 0;   // total evaluations
  int npc = 0;  // non-improving streak
  while (tc < config.time_limit && npc < config.early_stop) {
    // Suggest the whole batch first (sequentially: the sampler's RNG
    // stream advances on this thread, so the candidate sequence is
    // deterministic), then evaluate concurrently, then fold the
    // observations in candidate order -- the loop state updates exactly
    // as if the candidates had been evaluated one by one.
    const int want = std::min(batch, config.time_limit - tc);
    std::vector<Assignment> xs(static_cast<std::size_t>(want));
    for (int i = 0; i < want; ++i) xs[static_cast<std::size_t>(i)] =
        sampler.suggest(out.observations);
    std::vector<double> losses(static_cast<std::size_t>(want), 0.0);
    if (want == 1) {
      losses[0] = eval(xs[0]);
    } else {
      par::parallel_for(
          0, want, 1,
          [&](std::int64_t b, std::int64_t e, int) {
            for (std::int64_t i = b; i < e; ++i) {
              losses[static_cast<std::size_t>(i)] =
                  eval(xs[static_cast<std::size_t>(i)]);
            }
          },
          want);
    }
    for (int i = 0; i < want && npc < config.early_stop; ++i) {
      Observation o;
      o.x = xs[static_cast<std::size_t>(i)];
      o.loss = losses[static_cast<std::size_t>(i)];
      out.observations.push_back(std::move(o));
      if (losses[static_cast<std::size_t>(i)] < out.best_loss) {
        out.best_loss = losses[static_cast<std::size_t>(i)];
        out.best = xs[static_cast<std::size_t>(i)];
        npc = 0;
      }
      ++tc;
      ++npc;
    }
  }
  out.ranges = update_param_ranges(specs, out.observations);
  out.early_stopped = npc >= config.early_stop;
  return out;
}

StrategyExplorer::StrategyExplorer(std::vector<ParamSpec> specs,
                                   std::vector<std::vector<int>> groups,
                                   EvalFn eval, ExploreConfig config)
    : specs_(std::move(specs)),
      groups_(std::move(groups)),
      eval_(std::move(eval)),
      config_(validate_explore_config(config)) {
  best_.loss = std::numeric_limits<double>::max();
  // Complete the grouping with singleton groups for uncovered indices.
  std::vector<bool> covered(specs_.size(), false);
  for (const auto& g : groups_) {
    for (int d : g) {
      if (d >= 0 && d < static_cast<int>(specs_.size())) {
        covered[static_cast<std::size_t>(d)] = true;
      }
    }
  }
  for (std::size_t d = 0; d < specs_.size(); ++d) {
    if (!covered[d]) groups_.push_back({static_cast<int>(d)});
  }
}

Assignment StrategyExplorer::run() {
  // Line 1-2: rough global exploration over all parameters at once.
  {
    auto outcome = explore_parameters(specs_, eval_, config_);
    for (auto& o : outcome.observations) {
      if (o.loss < best_.loss) best_ = o;
      history_.push_back(std::move(o));
    }
    specs_ = std::move(outcome.ranges);
    PUFFER_LOG_INFO(kTag, "global exploration done: best loss %.5g over %zu evals",
                    best_.loss, history_.size());
  }

  // Lines 4-11: grouped local exploration; other parameters are pinned to
  // the middle of their current ranges.
  ExploreConfig group_cfg = config_;
  int tc = 0;
  bool early_stop = false;
  while (!early_stop && tc < config_.outer_rounds) {
    early_stop = true;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      const std::vector<int>& group = groups_[g];
      std::vector<ParamSpec> sub;
      sub.reserve(group.size());
      for (int d : group) sub.push_back(specs_[static_cast<std::size_t>(d)]);

      const Assignment pinned = mid_assignment(specs_);
      group_cfg.seed = config_.seed + 7919 * (g + 1) + 104729 * (tc + 1);
      auto outcome = explore_parameters(
          sub,
          [&](const Assignment& sub_x) {
            Assignment full = pinned;
            for (std::size_t k = 0; k < group.size(); ++k) {
              full[static_cast<std::size_t>(group[k])] = sub_x[k];
            }
            return eval_(full);
          },
          group_cfg);

      for (std::size_t k = 0; k < group.size(); ++k) {
        specs_[static_cast<std::size_t>(group[k])] = outcome.ranges[k];
      }
      for (auto& o : outcome.observations) {
        Observation full;
        full.x = pinned;
        for (std::size_t k = 0; k < group.size(); ++k) {
          full.x[static_cast<std::size_t>(group[k])] = o.x[k];
        }
        full.loss = o.loss;
        if (full.loss < best_.loss) best_ = full;
        history_.push_back(std::move(full));
      }
      early_stop = early_stop && outcome.early_stopped;
    }
    ++tc;
    PUFFER_LOG_INFO(kTag, "group round %d: best loss %.5g, %zu evals total", tc,
                    best_.loss, history_.size());
  }

  // Final configuration: median of the final ranges.
  return mid_assignment(specs_);
}

}  // namespace puffer
