// Rectilinear Steiner minimal tree construction (FLUTE substitute).
//
// The paper uses FLUTE [18] to derive a net's routing topology as a set of
// two-point nets whose endpoints are pins or Steiner points (SS III-A2).
// FLUTE's lookup tables are not redistributable, so this module builds the
// same interface from scratch:
//
//   * 1-3 pins: optimal (trivial; 3 pins use the component-wise median
//     Steiner point).
//   * >=4 pins: Prim MST under Manhattan distance followed by greedy
//     iterated 1-Steiner refinement (median of a vertex and two tree
//     neighbours), which recovers most of the MST-to-RSMT gap.
//
// The output is exactly what the congestion estimator consumes: a list of
// points flagged pin/Steiner plus two-point segments between them.
#pragma once

#include <vector>

#include "geometry/geometry.h"

namespace puffer {

struct RsmtPoint {
  Point pos;
  // Index of a representative input pin at this location, or -1 for a
  // Steiner point. Coincident input pins map to one tree point; see
  // RsmtTree::pin_point for the full mapping.
  int pin = -1;

  bool is_steiner() const { return pin < 0; }
};

struct RsmtSegment {
  int a = -1;  // point indices
  int b = -1;
};

struct RsmtTree {
  std::vector<RsmtPoint> points;
  std::vector<RsmtSegment> segments;
  // pin_point[i] = tree point holding input pin i.
  std::vector<int> pin_point;

  // Total rectilinear length (sum of segment Manhattan lengths).
  double length() const;

  // Segment indices incident to each point (built on demand by callers
  // that need pin-adjacency, e.g. the GNN-inspired pin congestion).
  std::vector<std::vector<int>> build_incidence() const;
};

// Builds the tree for the given pin locations. An empty input yields an
// empty tree; a single pin yields one point and no segments.
RsmtTree build_rsmt(const std::vector<Point>& pins);

// Lower bound sanity helper: HPWL of the pin set (the RSMT length is always
// >= HPWL for >=2 pins and >= HPWL/... see tests for the exact properties).
double pins_hpwl(const std::vector<Point>& pins);

}  // namespace puffer
