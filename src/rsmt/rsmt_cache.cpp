#include "rsmt/rsmt_cache.h"

#include <cmath>

namespace puffer {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

RsmtCache::RsmtCache(std::size_t num_nets, double quantum, bool enabled)
    : entries_(num_nets),
      inv_quantum_(1.0 / (quantum > 0.0 ? quantum : 1e-9)),
      enabled_(enabled) {}

std::uint64_t RsmtCache::key_of(const std::vector<Point>& pins) const {
  std::uint64_t h = fnv1a(kFnvOffset, pins.size());
  for (const Point& p : pins) {
    h = fnv1a(h, static_cast<std::uint64_t>(std::llround(p.x * inv_quantum_)));
    h = fnv1a(h, static_cast<std::uint64_t>(std::llround(p.y * inv_quantum_)));
  }
  return h;
}

const RsmtTree& RsmtCache::get_or_build(std::size_t net,
                                        const std::vector<Point>& pins) {
  return get_or_build(net, pins, enabled_ ? key_of(pins) : 0);
}

const RsmtTree& RsmtCache::get_or_build(std::size_t net,
                                        const std::vector<Point>& pins,
                                        std::uint64_t key) {
  Entry& e = entries_[net];
  if (!enabled_) {
    e.tree = build_rsmt(pins);
    e.valid = false;
    return e.tree;
  }
  if (e.valid && e.key == key) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return e.tree;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  e.tree = build_rsmt(pins);
  e.key = key;
  e.valid = true;
  return e.tree;
}

void RsmtCache::invalidate(std::size_t net) { entries_[net].valid = false; }

void RsmtCache::clear() {
  for (Entry& e : entries_) e.valid = false;
}

void RsmtCache::reset_stats() {
  hits_.store(0);
  misses_.store(0);
}

}  // namespace puffer
