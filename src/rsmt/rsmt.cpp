#include "rsmt/rsmt.h"

#include <algorithm>
#include <limits>
#include <map>

namespace puffer {

double RsmtTree::length() const {
  double sum = 0.0;
  for (const RsmtSegment& s : segments) {
    sum += manhattan(points[static_cast<std::size_t>(s.a)].pos,
                     points[static_cast<std::size_t>(s.b)].pos);
  }
  return sum;
}

std::vector<std::vector<int>> RsmtTree::build_incidence() const {
  std::vector<std::vector<int>> inc(points.size());
  for (std::size_t s = 0; s < segments.size(); ++s) {
    inc[static_cast<std::size_t>(segments[s].a)].push_back(static_cast<int>(s));
    inc[static_cast<std::size_t>(segments[s].b)].push_back(static_cast<int>(s));
  }
  return inc;
}

double pins_hpwl(const std::vector<Point>& pins) {
  if (pins.size() < 2) return 0.0;
  Rect box;
  for (const Point& p : pins) box.include(p);
  return box.width() + box.height();
}

namespace {

double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

// Prim MST over Manhattan distance; O(n^2), adequate for net degrees seen
// in practice (the generator caps fan-out; Bookshelf giants still work).
std::vector<std::pair<int, int>> prim_mst(const std::vector<Point>& pts) {
  const int n = static_cast<int>(pts.size());
  std::vector<std::pair<int, int>> edges;
  if (n < 2) return edges;
  std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
  std::vector<double> best(static_cast<std::size_t>(n),
                           std::numeric_limits<double>::max());
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  best[0] = 0.0;
  for (int iter = 0; iter < n; ++iter) {
    int u = -1;
    double bu = std::numeric_limits<double>::max();
    for (int i = 0; i < n; ++i) {
      if (!in_tree[static_cast<std::size_t>(i)] &&
          best[static_cast<std::size_t>(i)] < bu) {
        bu = best[static_cast<std::size_t>(i)];
        u = i;
      }
    }
    in_tree[static_cast<std::size_t>(u)] = true;
    if (parent[static_cast<std::size_t>(u)] >= 0) {
      edges.emplace_back(parent[static_cast<std::size_t>(u)], u);
    }
    for (int v = 0; v < n; ++v) {
      if (in_tree[static_cast<std::size_t>(v)]) continue;
      const double d = manhattan(pts[static_cast<std::size_t>(u)],
                                 pts[static_cast<std::size_t>(v)]);
      if (d < best[static_cast<std::size_t>(v)]) {
        best[static_cast<std::size_t>(v)] = d;
        parent[static_cast<std::size_t>(v)] = u;
      }
    }
  }
  return edges;
}

}  // namespace

RsmtTree build_rsmt(const std::vector<Point>& pins) {
  RsmtTree tree;
  tree.pin_point.assign(pins.size(), -1);
  if (pins.empty()) return tree;

  // Deduplicate coincident pins: one tree point per distinct location.
  std::map<std::pair<double, double>, int> loc_to_point;
  for (std::size_t i = 0; i < pins.size(); ++i) {
    const auto key = std::make_pair(pins[i].x, pins[i].y);
    auto it = loc_to_point.find(key);
    if (it == loc_to_point.end()) {
      RsmtPoint pt;
      pt.pos = pins[i];
      pt.pin = static_cast<int>(i);
      tree.points.push_back(pt);
      it = loc_to_point.emplace(key, static_cast<int>(tree.points.size() - 1))
               .first;
    }
    tree.pin_point[i] = it->second;
  }

  const int n = static_cast<int>(tree.points.size());
  if (n == 1) return tree;
  if (n == 2) {
    tree.segments.push_back({0, 1});
    return tree;
  }
  if (n == 3) {
    // Optimal 3-pin RSMT: the component-wise median point.
    const Point a = tree.points[0].pos;
    const Point b = tree.points[1].pos;
    const Point c = tree.points[2].pos;
    const Point med{median3(a.x, b.x, c.x), median3(a.y, b.y, c.y)};
    int hub = -1;
    for (int i = 0; i < 3; ++i) {
      if (tree.points[static_cast<std::size_t>(i)].pos == med) hub = i;
    }
    if (hub < 0) {
      RsmtPoint st;
      st.pos = med;
      st.pin = -1;
      tree.points.push_back(st);
      hub = 3;
    }
    for (int i = 0; i < 3; ++i) {
      if (i != hub) tree.segments.push_back({i, hub});
    }
    return tree;
  }

  // General case: MST, then greedy iterated 1-Steiner refinement.
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (const RsmtPoint& p : tree.points) pts.push_back(p.pos);
  auto edges = prim_mst(pts);

  // Adjacency as edge lists on point indices (points grow as Steiner
  // points are inserted).
  auto dist = [&](int a, int b) {
    return manhattan(tree.points[static_cast<std::size_t>(a)].pos,
                     tree.points[static_cast<std::size_t>(b)].pos);
  };

  bool improved = true;
  int rounds = 0;
  while (improved && rounds < 3) {
    improved = false;
    ++rounds;
    std::vector<std::vector<int>> adj(tree.points.size());
    for (std::size_t e = 0; e < edges.size(); ++e) {
      adj[static_cast<std::size_t>(edges[e].first)].push_back(
          static_cast<int>(e));
      adj[static_cast<std::size_t>(edges[e].second)].push_back(
          static_cast<int>(e));
    }
    const std::size_t point_count = tree.points.size();
    for (std::size_t v = 0; v < point_count; ++v) {
      const auto& inc = adj[v];
      if (inc.size() < 2) continue;
      // Best pair of incident edges to merge through a Steiner point.
      double best_gain = 1e-9;
      int best_e1 = -1, best_e2 = -1;
      Point best_st;
      for (std::size_t i = 0; i < inc.size(); ++i) {
        for (std::size_t j = i + 1; j < inc.size(); ++j) {
          const auto& e1 = edges[static_cast<std::size_t>(inc[i])];
          const auto& e2 = edges[static_cast<std::size_t>(inc[j])];
          const int u = e1.first == static_cast<int>(v) ? e1.second : e1.first;
          const int w = e2.first == static_cast<int>(v) ? e2.second : e2.first;
          const Point& pv = tree.points[v].pos;
          const Point& pu = tree.points[static_cast<std::size_t>(u)].pos;
          const Point& pw = tree.points[static_cast<std::size_t>(w)].pos;
          const Point st{median3(pv.x, pu.x, pw.x), median3(pv.y, pu.y, pw.y)};
          const double old_len = manhattan(pv, pu) + manhattan(pv, pw);
          const double new_len =
              manhattan(st, pu) + manhattan(st, pw) + manhattan(st, pv);
          const double gain = old_len - new_len;
          if (gain > best_gain) {
            best_gain = gain;
            best_e1 = inc[i];
            best_e2 = inc[j];
            best_st = st;
          }
        }
      }
      if (best_e1 < 0) continue;
      // Insert the Steiner point and retarget the two edges through it.
      RsmtPoint st;
      st.pos = best_st;
      st.pin = -1;
      tree.points.push_back(st);
      const int s = static_cast<int>(tree.points.size() - 1);
      auto retarget = [&](std::pair<int, int>& e) {
        if (e.first == static_cast<int>(v)) e.first = s;
        else e.second = s;
      };
      retarget(edges[static_cast<std::size_t>(best_e1)]);
      retarget(edges[static_cast<std::size_t>(best_e2)]);
      edges.emplace_back(static_cast<int>(v), s);
      improved = true;
      break;  // adjacency is stale; rebuild on the next round
    }
    if (improved) {
      // Keep refining within the same round counter by not incrementing
      // beyond the cap; the loop rebuilds adjacency at the top.
      rounds = std::min(rounds, 2);
    }
  }

  // Drop zero-length edges created when a Steiner point lands on a vertex.
  tree.segments.clear();
  for (const auto& [a, b] : edges) {
    if (dist(a, b) > 0.0 || tree.points.size() <= 2) {
      tree.segments.push_back({a, b});
    } else {
      // Zero-length edge: the two points coincide. Keep connectivity by
      // keeping the edge only if removing it would disconnect pins that
      // have no other representative; simplest safe choice is to keep it.
      tree.segments.push_back({a, b});
    }
  }
  return tree;
}

}  // namespace puffer
