// Memoizes per-net RSMT topologies across estimator / router calls.
//
// Between consecutive padding rounds (and between a padding round and the
// final routability evaluation) most nets have not moved, yet the
// estimator used to rebuild every tree from scratch. The cache keys each
// net's entry by an FNV-1a hash of its *quantized* pin positions: a pin
// move larger than the quantum changes the key and forces a rebuild, so
// stale topologies can never be served for a meaningfully different
// placement.
//
// Thread-safety: each net owns exactly one slot, so concurrent
// get_or_build calls for *different* nets are race-free (the parallel
// estimator fans out per net). The hit/miss counters are atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "geometry/geometry.h"
#include "rsmt/rsmt.h"

namespace puffer {

class RsmtCache {
 public:
  // `quantum` is the pin-position quantization step used for the key
  // (values <= 0 collapse to a near-exact 1e-9). A disabled cache always
  // rebuilds, keeping the serial reference path exact.
  explicit RsmtCache(std::size_t num_nets, double quantum = 1e-3,
                     bool enabled = true);

  // Returns the cached tree when the quantized pins match the stored key,
  // otherwise rebuilds via build_rsmt and stores the result.
  const RsmtTree& get_or_build(std::size_t net,
                               const std::vector<Point>& pins);
  // Same, with the key already computed via key_of (the incremental
  // estimator hashes every net for dirty detection and reuses the hash).
  const RsmtTree& get_or_build(std::size_t net, const std::vector<Point>& pins,
                               std::uint64_t key);

  void invalidate(std::size_t net);
  void clear();

  bool enabled() const { return enabled_; }
  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  double hit_rate() const {
    const double h = static_cast<double>(hits());
    const double m = static_cast<double>(misses());
    return h + m > 0.0 ? h / (h + m) : 0.0;
  }
  // Credits logical hits that skipped get_or_build entirely (the demand
  // ledger serves clean nets without consulting the cache).
  void add_hits(std::uint64_t n) {
    hits_.fetch_add(n, std::memory_order_relaxed);
  }
  void reset_stats();

  // Exposed for tests: the key two pin sets map to is equal iff every
  // coordinate rounds to the same quantum multiple.
  std::uint64_t key_of(const std::vector<Point>& pins) const;

 private:
  struct Entry {
    std::uint64_t key = 0;
    bool valid = false;
    RsmtTree tree;
  };

  std::vector<Entry> entries_;
  double inv_quantum_ = 1.0;
  bool enabled_ = true;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace puffer
