#include "netlist/design.h"

#include <limits>
#include <sstream>

namespace puffer {

CellId Design::add_cell(Cell cell) {
  cells.push_back(std::move(cell));
  return static_cast<CellId>(cells.size() - 1);
}

NetId Design::add_net(std::string net_name, double weight) {
  Net net;
  net.name = std::move(net_name);
  net.weight = weight;
  nets.push_back(std::move(net));
  return static_cast<NetId>(nets.size() - 1);
}

PinId Design::connect(CellId cell, NetId net, double dx, double dy) {
  Pin pin;
  pin.cell = cell;
  pin.net = net;
  pin.dx = dx;
  pin.dy = dy;
  pins.push_back(pin);
  const PinId id = static_cast<PinId>(pins.size() - 1);
  cells[static_cast<std::size_t>(cell)].pins.push_back(id);
  nets[static_cast<std::size_t>(net)].pins.push_back(id);
  return id;
}

double Design::net_hpwl(NetId net_id) const {
  const Net& net = nets[static_cast<std::size_t>(net_id)];
  if (net.pins.size() < 2) return 0.0;
  double xlo = std::numeric_limits<double>::max();
  double xhi = std::numeric_limits<double>::lowest();
  double ylo = xlo, yhi = xhi;
  for (PinId pid : net.pins) {
    const Point p = pin_position(pid);
    xlo = std::min(xlo, p.x);
    xhi = std::max(xhi, p.x);
    ylo = std::min(ylo, p.y);
    yhi = std::max(yhi, p.y);
  }
  return (xhi - xlo) + (yhi - ylo);
}

double Design::total_hpwl() const {
  double sum = 0.0;
  for (NetId n = 0; n < static_cast<NetId>(nets.size()); ++n) {
    sum += nets[static_cast<std::size_t>(n)].weight * net_hpwl(n);
  }
  return sum;
}

std::size_t Design::num_movable() const {
  std::size_t n = 0;
  for (const Cell& c : cells) n += c.movable() ? 1 : 0;
  return n;
}

std::size_t Design::num_macros() const {
  std::size_t n = 0;
  for (const Cell& c : cells) n += c.is_macro() ? 1 : 0;
  return n;
}

std::size_t Design::num_movable_pins() const {
  std::size_t n = 0;
  for (const Cell& c : cells) {
    if (c.movable()) n += c.pins.size();
  }
  return n;
}

double Design::movable_area() const {
  double a = 0.0;
  for (const Cell& c : cells) {
    if (c.movable()) a += c.area();
  }
  return a;
}

double Design::utilization() const {
  double macro_area = 0.0;
  for (const Cell& c : cells) {
    if (c.is_macro()) macro_area += c.rect().clamped(die).area();
  }
  const double free_area = die.area() - macro_area;
  return free_area > 0.0 ? movable_area() / free_area : 0.0;
}

std::string Design::validate() const {
  std::ostringstream err;
  for (std::size_t i = 0; i < pins.size(); ++i) {
    const Pin& p = pins[i];
    if (p.cell < 0 || p.cell >= static_cast<CellId>(cells.size())) {
      err << "pin " << i << " has invalid cell id\n";
      continue;
    }
    if (p.net < 0 || p.net >= static_cast<NetId>(nets.size())) {
      err << "pin " << i << " has invalid net id\n";
      continue;
    }
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (PinId pid : cells[c].pins) {
      if (pid < 0 || pid >= static_cast<PinId>(pins.size()) ||
          pins[static_cast<std::size_t>(pid)].cell != static_cast<CellId>(c)) {
        err << "cell " << c << " references pin " << pid
            << " that does not point back\n";
      }
    }
  }
  for (std::size_t n = 0; n < nets.size(); ++n) {
    for (PinId pid : nets[n].pins) {
      if (pid < 0 || pid >= static_cast<PinId>(pins.size()) ||
          pins[static_cast<std::size_t>(pid)].net != static_cast<NetId>(n)) {
        err << "net " << n << " references pin " << pid
            << " that does not point back\n";
      }
    }
  }
  return err.str();
}

void Design::clamp_to_die(CellId id) {
  Cell& c = cells[static_cast<std::size_t>(id)];
  c.x = clamp(c.x, die.xlo, std::max(die.xlo, die.xhi - c.width));
  c.y = clamp(c.y, die.ylo, std::max(die.ylo, die.yhi - c.height));
}

}  // namespace puffer
