// Design database: the circuit netlist H = (V, E) plus physical context
// (rows, die area, technology). This is the hub structure shared by the
// placer, the routability optimizer, the legalizer and the router.
//
// Storage is index-based (int32 ids into flat vectors) for cache locality;
// names are kept only for I/O and debugging.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/geometry.h"
#include "netlist/technology.h"

namespace puffer {

using CellId = std::int32_t;
using NetId = std::int32_t;
using PinId = std::int32_t;

inline constexpr std::int32_t kInvalidId = -1;

enum class CellKind : std::uint8_t {
  kMovable,    // standard cell placed by the global placer
  kMacro,      // fixed macro block; acts as placement and routing blockage
  kTerminal,   // fixed I/O terminal; zero routing blockage
};

struct Cell {
  std::string name;
  CellKind kind = CellKind::kMovable;
  double width = 0.0;
  double height = 0.0;
  // Lower-left corner.
  double x = 0.0;
  double y = 0.0;
  std::vector<PinId> pins;

  bool movable() const { return kind == CellKind::kMovable; }
  bool is_macro() const { return kind == CellKind::kMacro; }
  double area() const { return width * height; }
  Rect rect() const { return {x, y, x + width, y + height}; }
  Point center() const { return {x + width * 0.5, y + height * 0.5}; }
};

struct Pin {
  CellId cell = kInvalidId;
  NetId net = kInvalidId;
  // Offset of the pin from the owning cell's lower-left corner.
  double dx = 0.0;
  double dy = 0.0;
};

struct Net {
  std::string name;
  std::vector<PinId> pins;
  double weight = 1.0;
};

struct Row {
  double y = 0.0;        // bottom of the row
  double x_lo = 0.0;     // left edge of first site
  int num_sites = 0;
  double site_width = 1.0;
  double height = 1.0;

  double x_hi() const { return x_lo + num_sites * site_width; }
};

class Design {
 public:
  std::string name;
  Technology tech;
  Rect die;  // placement region

  std::vector<Cell> cells;
  std::vector<Pin> pins;
  std::vector<Net> nets;
  std::vector<Row> rows;

  // --- construction helpers -------------------------------------------
  CellId add_cell(Cell cell);
  NetId add_net(std::string net_name, double weight = 1.0);
  // Creates a pin on `cell` connected to `net` at offset (dx, dy).
  PinId connect(CellId cell, NetId net, double dx, double dy);

  // --- queries ---------------------------------------------------------
  Point pin_position(PinId pin) const {
    const Pin& p = pins[static_cast<std::size_t>(pin)];
    const Cell& c = cells[static_cast<std::size_t>(p.cell)];
    return {c.x + p.dx, c.y + p.dy};
  }

  // Half-perimeter wirelength of one net; 0 for degree<2 nets.
  double net_hpwl(NetId net) const;

  // Total weighted HPWL over all nets.
  double total_hpwl() const;

  std::size_t num_movable() const;
  std::size_t num_macros() const;
  // Total pins on movable cells (the "#Pins" statistic of Table I).
  std::size_t num_movable_pins() const;

  double movable_area() const;
  // Placement utilization: movable area / (die area - macro area).
  double utilization() const;

  // Checks internal cross-reference consistency (pin<->cell<->net);
  // returns an explanatory string, empty when valid.
  std::string validate() const;

  // Clamp cell (x,y) so the cell stays inside the die.
  void clamp_to_die(CellId id);
};

}  // namespace puffer
