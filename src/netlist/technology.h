// Technology description: site geometry and the metal layer stack.
//
// The congestion model (Eq. 8 of the paper) derives per-Gcell routing
// capacity from the metal layers' preferred directions, wire widths and
// spacings; blockages subtract resource on the layers they obstruct.
#pragma once

#include <string>
#include <vector>

namespace puffer {

enum class RouteDir { kHorizontal, kVertical };

struct MetalLayer {
  std::string name;
  RouteDir dir = RouteDir::kHorizontal;
  double wire_width = 1.0;   // DBU
  double wire_spacing = 1.0; // DBU

  // Track pitch: one routing track per (width + spacing).
  double pitch() const { return wire_width + wire_spacing; }
};

struct Technology {
  double site_width = 1.0;   // legalization x-grid
  double row_height = 10.0;  // standard cell height

  // Layer 0 is the lowest metal. Macros are assumed to block all layers
  // up to (and including) `macro_blocked_layers`.
  std::vector<MetalLayer> layers;
  int macro_blocked_layers = 4;

  // Builds a typical 6-layer alternating H/V stack scaled to the row
  // height; used by the synthetic generator and the tests.
  static Technology make_default(double site_w, double row_h, int num_layers = 6);

  // Sum of track densities (tracks per DBU) in one direction.
  double track_density(RouteDir dir) const;

  // Track density counting only layers above the macro-blocked range;
  // this is the capacity remaining over a macro.
  double track_density_over_macros(RouteDir dir) const;
};

}  // namespace puffer
