#include "netlist/technology.h"

namespace puffer {

Technology Technology::make_default(double site_w, double row_h, int num_layers) {
  Technology tech;
  tech.site_width = site_w;
  tech.row_height = row_h;
  tech.layers.reserve(static_cast<std::size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    MetalLayer layer;
    layer.name = "M" + std::to_string(l + 1);
    // M1 horizontal, M2 vertical, alternating upward. Upper layers are
    // wider/coarser, as in real stacks. Pitches are calibrated so that a
    // clustered design at ~80% utilization stresses (but does not swamp)
    // the supply -- see the capacity tests.
    layer.dir = (l % 2 == 0) ? RouteDir::kHorizontal : RouteDir::kVertical;
    const double scale = 1.0 + 0.25 * (l / 2);
    layer.wire_width = 0.05 * row_h * scale;
    layer.wire_spacing = 0.05 * row_h * scale;
    tech.layers.push_back(layer);
  }
  tech.macro_blocked_layers = std::max(1, num_layers - 2);
  return tech;
}

double Technology::track_density(RouteDir dir) const {
  double sum = 0.0;
  for (const auto& layer : layers) {
    if (layer.dir == dir) sum += 1.0 / layer.pitch();
  }
  return sum;
}

double Technology::track_density_over_macros(RouteDir dir) const {
  double sum = 0.0;
  for (std::size_t l = static_cast<std::size_t>(macro_blocked_layers);
       l < layers.size(); ++l) {
    if (layers[l].dir == dir) sum += 1.0 / layers[l].pitch();
  }
  return sum;
}

}  // namespace puffer
