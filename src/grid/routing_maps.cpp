#include "grid/routing_maps.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace puffer {

RoutingMaps::RoutingMaps(const GcellGrid& g, CapacityMaps caps)
    : grid(g),
      cap_h(std::move(caps.cap_h)),
      cap_v(std::move(caps.cap_v)),
      dmd_h(g.nx(), g.ny()),
      dmd_v(g.nx(), g.ny()) {}

double RoutingMaps::cg_h(int gx, int gy) const {
  const double cap = cap_h.at(gx, gy);
  return (dmd_h.at(gx, gy) - cap) / std::max(cap, 1.0);
}

double RoutingMaps::cg_v(int gx, int gy) const {
  const double cap = cap_v.at(gx, gy);
  return (dmd_v.at(gx, gy) - cap) / std::max(cap, 1.0);
}

double RoutingMaps::cg(int gx, int gy) const {
  const double h = cg_h(gx, gy);
  const double v = cg_v(gx, gy);
  if (h * v < 0.0) return std::max(h, v);
  return h + v;
}

Map2D<double> RoutingMaps::cg_map() const {
  Map2D<double> out(grid.nx(), grid.ny());
  for (int gy = 0; gy < grid.ny(); ++gy) {
    for (int gx = 0; gx < grid.nx(); ++gx) out.at(gx, gy) = cg(gx, gy);
  }
  return out;
}

OverflowStats compute_overflow(const RoutingMaps& maps) {
  OverflowStats stats;
  double of_h = 0.0, of_v = 0.0, cap_h_sum = 0.0, cap_v_sum = 0.0;
  for (int gy = 0; gy < maps.grid.ny(); ++gy) {
    for (int gx = 0; gx < maps.grid.nx(); ++gx) {
      const double ch = maps.cap_h.at(gx, gy);
      const double cv = maps.cap_v.at(gx, gy);
      const double oh = std::max(0.0, maps.dmd_h.at(gx, gy) - ch);
      const double ov = std::max(0.0, maps.dmd_v.at(gx, gy) - cv);
      of_h += oh;
      of_v += ov;
      cap_h_sum += ch;
      cap_v_sum += cv;
      if (oh > 0.0 || ov > 0.0) ++stats.overflowed_gcells;
    }
  }
  stats.hof_pct = cap_h_sum > 0.0 ? 100.0 * of_h / cap_h_sum : 0.0;
  stats.vof_pct = cap_v_sum > 0.0 ? 100.0 * of_v / cap_v_sum : 0.0;
  stats.total_overflow = of_h + of_v;
  return stats;
}

std::uint64_t demand_checksum(const RoutingMaps& maps) {
  constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
  constexpr std::uint64_t kFnvPrime = 1099511628211ull;
  std::uint64_t h = kFnvOffset;
  const auto mix = [&h](const Map2D<double>& m) {
    for (const double v : m.raw()) {
      std::uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      for (int i = 0; i < 8; ++i) {
        h ^= (bits >> (i * 8)) & 0xffu;
        h *= kFnvPrime;
      }
    }
  };
  mix(maps.dmd_h);
  mix(maps.dmd_v);
  return h;
}

double map_correlation(const Map2D<double>& a, const Map2D<double>& b) {
  if (a.size() != b.size() || a.size() == 0) {
    throw std::invalid_argument("map_correlation: size mismatch");
  }
  const std::size_t n = a.size();
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a.raw()[i];
    mb += b.raw()[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a.raw()[i] - ma;
    const double db = b.raw()[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::string map_to_ascii(const Map2D<double>& map) {
  std::ostringstream os;
  // Print top row (max gy) first so the picture is upright.
  for (int gy = map.ny() - 1; gy >= 0; --gy) {
    for (int gx = 0; gx < map.nx(); ++gx) {
      const double v = map.at(gx, gy);
      char c;
      if (v <= -0.5) c = ' ';
      else if (v <= 0.0) c = '.';
      else if (v >= 0.9) c = '#';
      else c = static_cast<char>('1' + static_cast<int>(v * 10.0));
      os << c;
    }
    os << '\n';
  }
  return os.str();
}

void write_map_ppm(const Map2D<double>& map, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "P6\n" << map.nx() << ' ' << map.ny() << "\n255\n";
  for (int gy = map.ny() - 1; gy >= 0; --gy) {
    for (int gx = 0; gx < map.nx(); ++gx) {
      const double v = map.at(gx, gy);
      unsigned char r, g, b;
      if (v <= 0.0) {
        // Slack: dark blue (deep slack) to light blue (near capacity).
        const double t = clamp(1.0 + v, 0.0, 1.0);  // v in [-1, 0]
        r = static_cast<unsigned char>(40 * t);
        g = static_cast<unsigned char>(90 + 110 * t);
        b = 255;
      } else {
        // Overflow: yellow to saturated red as v goes 0 -> 1+.
        const double t = clamp(v, 0.0, 1.0);
        r = 255;
        g = static_cast<unsigned char>(230 * (1.0 - t));
        b = 0;
      }
      out.put(static_cast<char>(r));
      out.put(static_cast<char>(g));
      out.put(static_cast<char>(b));
    }
  }
}

}  // namespace puffer
