// Gcell grid: the uniform partition of the routing region used by the
// routing-resource model (Fig. 1 of the paper). Provides coordinate <->
// index transforms shared by the congestion estimator and the router.
#pragma once

#include "geometry/geometry.h"

namespace puffer {

struct GcellIndex {
  int gx = 0;
  int gy = 0;
};

class GcellGrid {
 public:
  GcellGrid() = default;
  // Partitions `area` into nx-by-ny Gcells.
  GcellGrid(const Rect& area, int nx, int ny);

  // Builds a grid whose Gcell height is ~`rows_per_gcell` standard-cell
  // rows, the conventional global-routing granularity.
  static GcellGrid from_row_pitch(const Rect& area, double row_height,
                                  double rows_per_gcell);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  const Rect& area() const { return area_; }
  double gcell_w() const { return gw_; }
  double gcell_h() const { return gh_; }

  // Index of the Gcell containing (x, y); clamped to the grid.
  GcellIndex index_of(double x, double y) const;

  // Geometric extent of Gcell (gx, gy).
  Rect gcell_rect(int gx, int gy) const;

  // Center of a Gcell.
  Point gcell_center(int gx, int gy) const;

  // Inclusive index range of Gcells overlapping `r` (clamped).
  void range_of(const Rect& r, GcellIndex& lo, GcellIndex& hi) const;

 private:
  Rect area_;
  int nx_ = 0;
  int ny_ = 0;
  double gw_ = 1.0;
  double gh_ = 1.0;
};

}  // namespace puffer
