// Aggregate routing-resource state: capacity + demand per Gcell, the
// signed congestion measure of Eqs. (10)-(11), overflow statistics
// (Eq. 7-style) and map export for Fig. 5-like congestion pictures.
#pragma once

#include <cstdint>
#include <string>

#include "grid/capacity.h"
#include "grid/gcell.h"
#include "grid/map2d.h"

namespace puffer {

struct RoutingMaps {
  GcellGrid grid;
  Map2D<double> cap_h, cap_v;  // capacity (tracks)
  Map2D<double> dmd_h, dmd_v;  // demand (track-equivalents)

  RoutingMaps() = default;
  RoutingMaps(const GcellGrid& g, CapacityMaps caps);

  // Signed per-direction congestion, Eq. (11):
  //   Cg_{H/V}(g) = (Dmd - Cap) / max(Cap, 1).
  double cg_h(int gx, int gy) const;
  double cg_v(int gx, int gy) const;

  // Per-direction overflow predicate (dmd > cap, strict) -- the single
  // definition shared by compute_overflow, the router's incremental
  // overflow tracker and the history-cost growth.
  bool overflowed_h(int gx, int gy) const {
    return dmd_h.at(gx, gy) > cap_h.at(gx, gy);
  }
  bool overflowed_v(int gx, int gy) const {
    return dmd_v.at(gx, gy) > cap_v.at(gx, gy);
  }

  // Combined congestion, Eq. (10): when the two directions disagree in
  // sign take the max; otherwise their sum.
  double cg(int gx, int gy) const;

  // Map of cg() over all Gcells.
  Map2D<double> cg_map() const;
};

// Overflow statistics used as the evaluation objective and the HOF/VOF
// numbers of Table II: total overflow normalized by total capacity, in %.
struct OverflowStats {
  double hof_pct = 0.0;       // horizontal overflow ratio (%)
  double vof_pct = 0.0;       // vertical overflow ratio (%)
  double total_overflow = 0.0;  // raw sum over both directions (tracks)
  int overflowed_gcells = 0;

  double total_pct() const { return hof_pct + vof_pct; }
};

OverflowStats compute_overflow(const RoutingMaps& maps);

// FNV-1a over the raw bit patterns of both demand maps. Bit-identical maps
// (and only those) hash equal, so the incremental estimator's drift check,
// the randomized-equivalence tests and the benchmark can compare full vs
// ledger-based results with a single number.
std::uint64_t demand_checksum(const RoutingMaps& maps);

// Pearson correlation between two equally-sized maps; used by the
// estimation-accuracy ablation. Returns 0 when either map is constant.
double map_correlation(const Map2D<double>& a, const Map2D<double>& b);

// Dumps a signed map to ASCII art (one char per Gcell, '.'=slack through
// '9'/'#'=heavy overflow) and to a PPM heatmap (blue=slack, red=overflow).
std::string map_to_ascii(const Map2D<double>& map);
void write_map_ppm(const Map2D<double>& map, const std::string& path);

}  // namespace puffer
