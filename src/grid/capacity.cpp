#include "grid/capacity.h"

#include <algorithm>

namespace puffer {

CapacityMaps build_capacity_maps(const Design& design, const GcellGrid& grid,
                                 const std::vector<RoutingBlockage>& blockages) {
  CapacityMaps maps;
  maps.cap_h = Map2D<double>(grid.nx(), grid.ny());
  maps.cap_v = Map2D<double>(grid.nx(), grid.ny());

  const Technology& tech = design.tech;
  // Basic capacity: tracks crossing the Gcell in each direction.
  // Horizontal tracks stack along y, so their count is Gcell height times
  // the horizontal track density; vertical symmetric.
  const double base_h = grid.gcell_h() * tech.track_density(RouteDir::kHorizontal);
  const double base_v = grid.gcell_w() * tech.track_density(RouteDir::kVertical);
  for (int gy = 0; gy < grid.ny(); ++gy) {
    for (int gx = 0; gx < grid.nx(); ++gx) {
      maps.cap_h.at(gx, gy) = base_h;
      maps.cap_v.at(gx, gy) = base_v;
    }
  }

  // Track density removed by a macro (it blocks the lower layers only).
  const double blocked_h = tech.track_density(RouteDir::kHorizontal) -
                           tech.track_density_over_macros(RouteDir::kHorizontal);
  const double blocked_v = tech.track_density(RouteDir::kVertical) -
                           tech.track_density_over_macros(RouteDir::kVertical);

  auto subtract_rect = [&](const Rect& r, double density_h, double density_v) {
    const Rect clipped = r.clamped(grid.area());
    if (clipped.empty()) return;
    GcellIndex lo, hi;
    grid.range_of(clipped, lo, hi);
    for (int gy = lo.gy; gy <= hi.gy; ++gy) {
      for (int gx = lo.gx; gx <= hi.gx; ++gx) {
        const Rect cell = grid.gcell_rect(gx, gy);
        const Rect ov = cell.intersect(clipped);
        if (ov.empty()) continue;
        // Blocked horizontal tracks: overlap height times density, scaled
        // by the covered width fraction (a partial-width obstruction
        // still lets tracks through the uncovered part).
        const double frac_w = ov.width() / cell.width();
        const double frac_h = ov.height() / cell.height();
        double& ch = maps.cap_h.at(gx, gy);
        double& cv = maps.cap_v.at(gx, gy);
        ch = std::max(0.0, ch - ov.height() * density_h * frac_w);
        cv = std::max(0.0, cv - ov.width() * density_v * frac_h);
      }
    }
  };

  for (const Cell& c : design.cells) {
    if (c.is_macro()) subtract_rect(c.rect(), blocked_h, blocked_v);
  }
  for (const RoutingBlockage& b : blockages) {
    if (b.layer < 0 || b.layer >= static_cast<int>(tech.layers.size())) continue;
    const MetalLayer& layer = tech.layers[static_cast<std::size_t>(b.layer)];
    const double density = 1.0 / layer.pitch();
    if (layer.dir == RouteDir::kHorizontal) {
      subtract_rect(b.rect, density, 0.0);
    } else {
      subtract_rect(b.rect, 0.0, density);
    }
  }
  return maps;
}

}  // namespace puffer
