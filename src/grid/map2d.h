// Dense row-major 2D value map over a Gcell or bin grid.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

namespace puffer {

template <typename T>
class Map2D {
 public:
  Map2D() = default;
  Map2D(int nx, int ny, T init = T{})
      : nx_(nx), ny_(ny),
        data_(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny),
              init) {}

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::size_t size() const { return data_.size(); }

  T& at(int gx, int gy) {
    assert(gx >= 0 && gx < nx_ && gy >= 0 && gy < ny_);
    return data_[static_cast<std::size_t>(gy) * static_cast<std::size_t>(nx_) +
                 static_cast<std::size_t>(gx)];
  }
  const T& at(int gx, int gy) const {
    assert(gx >= 0 && gx < nx_ && gy >= 0 && gy < ny_);
    return data_[static_cast<std::size_t>(gy) * static_cast<std::size_t>(nx_) +
                 static_cast<std::size_t>(gx)];
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  const std::vector<T>& raw() const { return data_; }
  std::vector<T>& raw() { return data_; }

  T max_value() const {
    T m = T{};
    for (const T& v : data_) m = std::max(m, v);
    return m;
  }

  T sum() const {
    T s = T{};
    for (const T& v : data_) s += v;
    return s;
  }

 private:
  int nx_ = 0;
  int ny_ = 0;
  std::vector<T> data_;
};

}  // namespace puffer
