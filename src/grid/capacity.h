// Blockage-aware routing capacity assessment (paper Eq. 8).
//
// Capacity is evaluated per Gcell (not per edge) following the
// Gcell-based routing resource model of SS II-C / SS III-A1: the basic
// capacity comes from the metal stack's track pitches, and blockages
// (macros; optionally arbitrary routing blockage rects such as pre-routed
// power stripes) subtract the resource they obstruct on their layers.
#pragma once

#include <vector>

#include "grid/gcell.h"
#include "grid/map2d.h"
#include "netlist/design.h"

namespace puffer {

struct CapacityMaps {
  Map2D<double> cap_h;  // tracks available for horizontal routing
  Map2D<double> cap_v;  // tracks available for vertical routing
};

// Extra routing blockages beyond macros (e.g. power/ground stripes).
// `layer` indexes into Technology::layers.
struct RoutingBlockage {
  Rect rect;
  int layer = 0;
};

// Computes per-Gcell H/V capacities. Macros block the technology's
// `macro_blocked_layers` lowest layers; explicit blockages subtract the
// capacity of their single layer. Capacities are clamped at >= 0.
CapacityMaps build_capacity_maps(
    const Design& design, const GcellGrid& grid,
    const std::vector<RoutingBlockage>& blockages = {});

}  // namespace puffer
