#include "grid/gcell.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace puffer {

GcellGrid::GcellGrid(const Rect& area, int nx, int ny)
    : area_(area), nx_(nx), ny_(ny) {
  if (nx < 1 || ny < 1 || area.empty()) {
    throw std::invalid_argument("GcellGrid: bad dimensions");
  }
  gw_ = area.width() / nx;
  gh_ = area.height() / ny;
}

GcellGrid GcellGrid::from_row_pitch(const Rect& area, double row_height,
                                    double rows_per_gcell) {
  const double pitch = std::max(1e-9, row_height * rows_per_gcell);
  const int ny = std::max(1, static_cast<int>(std::round(area.height() / pitch)));
  const int nx = std::max(1, static_cast<int>(std::round(area.width() / pitch)));
  return GcellGrid(area, nx, ny);
}

GcellIndex GcellGrid::index_of(double x, double y) const {
  GcellIndex idx;
  idx.gx = static_cast<int>(std::floor((x - area_.xlo) / gw_));
  idx.gy = static_cast<int>(std::floor((y - area_.ylo) / gh_));
  idx.gx = std::clamp(idx.gx, 0, nx_ - 1);
  idx.gy = std::clamp(idx.gy, 0, ny_ - 1);
  return idx;
}

Rect GcellGrid::gcell_rect(int gx, int gy) const {
  const double x0 = area_.xlo + gx * gw_;
  const double y0 = area_.ylo + gy * gh_;
  return {x0, y0, x0 + gw_, y0 + gh_};
}

Point GcellGrid::gcell_center(int gx, int gy) const {
  return {area_.xlo + (gx + 0.5) * gw_, area_.ylo + (gy + 0.5) * gh_};
}

void GcellGrid::range_of(const Rect& r, GcellIndex& lo, GcellIndex& hi) const {
  lo = index_of(r.xlo, r.ylo);
  // Nudge the upper corner inward so an exact boundary does not spill
  // into the next Gcell.
  hi = index_of(r.xhi - 1e-12, r.yhi - 1e-12);
  if (hi.gx < lo.gx) hi.gx = lo.gx;
  if (hi.gy < lo.gy) hi.gy = lo.gy;
}

}  // namespace puffer
