#!/usr/bin/env bash
# Worker-death smoke test for distributed trial orchestration.
#
# Runs a single-process reference exploration to completion, then the
# same exploration distributed across a coordinator and two puffer_worker
# processes -- one of which is SIGKILLed as soon as the journal records
# the first trial start. The coordinator must detect the death, reassign
# the in-flight trial to the surviving worker, and finish with a
# best_checksum identical to the single-process reference: worker death
# costs only the lost evaluation, never the result.
#
# Usage: scripts/kill_worker_smoke.sh  [BUILD_DIR=build]
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
BIN="$BUILD_DIR/tools/puffer_explore"
WORKER="$BUILD_DIR/tools/puffer_worker"
for b in "$BIN" "$WORKER"; do
  if [ ! -x "$b" ]; then
    echo "missing $b -- build the repo first" >&2
    exit 2
  fi
done

WORK="$(mktemp -d)"
cleanup() {
  [ -n "${W1:-}" ] && kill -9 "$W1" 2>/dev/null || true
  [ -n "${W2:-}" ] && kill -9 "$W2" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

BENCH=(--bench OR1200 --scale 256)
ARGS=("${BENCH[@]}" --trials 4 --batch 2 --concurrency 2 --seed 77 --quiet)
SOCK="$WORK/coord.sock"

echo "== single-process reference run =="
"$BIN" "${ARGS[@]}" --checkpoint-dir "$WORK/ref_ck" \
    --journal "$WORK/ref.jsonl" | tee "$WORK/ref.out"
REF=$(awk '/^best_checksum:/ {print $2}' "$WORK/ref.out")
[ -n "$REF" ] || { echo "FAIL: reference run printed no checksum"; exit 1; }

echo "== distributed run: coordinator + 2 workers, one SIGKILLed =="
"$WORKER" --connect "$SOCK" "${BENCH[@]}" --name victim \
    --connect-timeout 120 --quiet > "$WORK/w1.out" 2>&1 &
W1=$!
"$WORKER" --connect "$SOCK" "${BENCH[@]}" --name survivor \
    --connect-timeout 120 --quiet > "$WORK/w2.out" 2>&1 &
W2=$!

"$BIN" "${ARGS[@]}" --checkpoint-dir "$WORK/ck" \
    --journal "$WORK/trials.jsonl" \
    --listen "$SOCK" --min-workers 2 > "$WORK/dist.out" 2>&1 &
COORD=$!

# SIGKILL one worker as soon as a trial is in flight.
KILLED=0
for _ in $(seq 1 600); do
  kill -0 "$COORD" 2>/dev/null || break
  if grep -q trial_start "$WORK/trials.jsonl" 2>/dev/null; then
    kill -9 "$W1" 2>/dev/null || true
    KILLED=1
    echo "SIGKILLed worker 'victim' mid-trial"
    break
  fi
  sleep 0.1
done
[ "$KILLED" -eq 1 ] || { echo "FAIL: no trial started before timeout"; exit 1; }

wait "$COORD"
wait "$W2" 2>/dev/null || true
cat "$WORK/dist.out"

DIST=$(awk '/^best_checksum:/ {print $2}' "$WORK/dist.out")
if [ -z "$DIST" ]; then
  echo "FAIL: distributed run printed no checksum"
  exit 1
fi
if [ "$REF" != "$DIST" ]; then
  echo "FAIL: distributed best_checksum $DIST != reference $REF"
  exit 1
fi
echo "PASS: worker killed mid-trial; best_checksum matches reference ($REF)"
