#!/usr/bin/env bash
# Kill-and-resume smoke test for the trial orchestrator.
#
# Runs a reference exploration to completion, then the same exploration
# again -- SIGKILLed as soon as its crash-safe journal records the first
# completed trial -- and finally resumes it. The resumed run must replay
# the journaled trials instead of re-evaluating them and print a
# best_checksum identical to the uninterrupted reference: the journal +
# checkpoint contract survives a hard kill at an arbitrary point.
#
# Usage: scripts/kill_resume_smoke.sh  [BUILD_DIR=build]
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
BIN="$BUILD_DIR/tools/puffer_explore"
if [ ! -x "$BIN" ]; then
  echo "missing $BIN -- build the repo first" >&2
  exit 2
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

ARGS=(--bench OR1200 --scale 256 --trials 4 --batch 2 --concurrency 2
      --seed 77 --quiet)

echo "== reference (uninterrupted) run =="
"$BIN" "${ARGS[@]}" --checkpoint-dir "$WORK/ref_ck" \
    --journal "$WORK/ref.jsonl" | tee "$WORK/ref.out"
REF=$(awk '/^best_checksum:/ {print $2}' "$WORK/ref.out")
[ -n "$REF" ] || { echo "FAIL: reference run printed no checksum"; exit 1; }

echo "== run to be killed =="
"$BIN" "${ARGS[@]}" --checkpoint-dir "$WORK/ck" \
    --journal "$WORK/trials.jsonl" > "$WORK/killed.out" 2>&1 &
PID=$!
for _ in $(seq 1 600); do
  kill -0 "$PID" 2>/dev/null || break
  if grep -q trial_complete "$WORK/trials.jsonl" 2>/dev/null; then
    kill -9 "$PID" 2>/dev/null || true
    echo "SIGKILLed mid-exploration (first completed trial in journal)"
    break
  fi
  sleep 0.1
done
wait "$PID" 2>/dev/null || true

COMPLETED=$(grep -c trial_complete "$WORK/trials.jsonl" || true)
echo "journal holds $COMPLETED completed trial(s) after the kill"
[ "$COMPLETED" -ge 1 ] || { echo "FAIL: nothing journaled before kill"; exit 1; }

echo "== resumed run =="
"$BIN" "${ARGS[@]}" --checkpoint-dir "$WORK/ck" \
    --journal "$WORK/trials.jsonl" --resume | tee "$WORK/resume.out"
RES=$(awk '/^best_checksum:/ {print $2}' "$WORK/resume.out")
RESUMED=$(grep -oE '[0-9]+ resumed' "$WORK/resume.out" | awk '{print $1}')

if [ "${RESUMED:-0}" -lt 1 ]; then
  echo "FAIL: resumed run replayed no journaled trials"
  exit 1
fi
if [ "$REF" != "$RES" ]; then
  echo "FAIL: resumed best_checksum $RES != reference $REF"
  exit 1
fi
echo "PASS: $RESUMED trial(s) replayed; best_checksum matches reference ($REF)"
