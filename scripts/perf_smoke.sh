#!/usr/bin/env bash
# Perf-smoke gate for the SoA global-placement core.
#
# Runs bench_parallel_hotpaths at a small PUFFER_SCALE and checks the
# determinism evidence it emits:
#
#   1. bit_identical must be "yes" -- the final placement checksum agrees
#      across PUFFER_THREADS 1/2/8, with PUFFER_SIMD off, and with the
#      legacy scalar kernels, all within this run (machine-independent).
#   2. Every checksum_* field must equal the committed reference, so a
#      placement-changing regression cannot land silently even if it
#      changes all configurations consistently. The reference is tied to
#      the CI toolchain (x86-64, gcc/glibc): libm differences move the
#      bits legitimately. After an intentional numeric change, or a
#      toolchain bump, regenerate with:
#
#        PUFFER_SCALE=512 PUFFER_THREADS=8 ./build/bench/bench_parallel_hotpaths
#        grep -E '"(checksum_|bit_identical)' \
#            bench_results/BENCH_parallel_hotpaths.json \
#            > bench_results/REFERENCE_perf_smoke_checksums.txt
#
# Timings in the JSON are informational at smoke scale (CI machines are
# noisy); the full-scale numbers live in the committed BENCH_*.json.
#
# Usage: scripts/perf_smoke.sh  [BUILD_DIR=build] [PUFFER_SCALE=512]
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
SCALE="${PUFFER_SCALE:-512}"
BIN="$BUILD_DIR/bench/bench_parallel_hotpaths"
OUT="bench_results/BENCH_parallel_hotpaths.json"
REF="bench_results/REFERENCE_perf_smoke_checksums.txt"

if [ ! -x "$BIN" ]; then
  echo "missing $BIN -- build the repo first" >&2
  exit 2
fi
if [ ! -f "$REF" ]; then
  echo "missing reference $REF -- see the regeneration command above" >&2
  exit 2
fi

# The bench overwrites the committed full-scale JSON; keep a copy so the
# smoke run leaves the checkout clean.
SAVED=""
if [ -f "$OUT" ]; then
  SAVED="$(mktemp)"
  cp "$OUT" "$SAVED"
fi
restore() { [ -n "$SAVED" ] && mv "$SAVED" "$OUT" || true; }

echo "== bench_parallel_hotpaths (PUFFER_SCALE=$SCALE, PUFFER_THREADS=8) =="
PUFFER_SCALE="$SCALE" PUFFER_THREADS=8 "$BIN"

GOT="$(mktemp)"
grep -E '"(checksum_|bit_identical)' "$OUT" > "$GOT"
mkdir -p bench_results
cp "$GOT" bench_results/perf_smoke_checksums.txt  # CI artifact
restore

if ! grep -q '"bit_identical": "yes"' "$GOT"; then
  echo "FAIL: run is not bit-identical across threads/SIMD/kernel paths:"
  cat "$GOT"
  exit 1
fi
if ! diff -u "$REF" "$GOT"; then
  echo "FAIL: checksum_* fields differ from the committed reference $REF."
  echo "If the numeric change is intentional, regenerate the reference"
  echo "(command in the header of this script) and commit it."
  exit 1
fi
echo "PASS: bit-identical run, checksums match the committed reference"
