#!/usr/bin/env bash
# Perf-smoke gate for the SoA global-placement core and the padding
# feature pipeline.
#
# Runs bench_parallel_hotpaths and bench_padding_features at a small
# PUFFER_SCALE and checks the determinism evidence they emit:
#
#   1. bit_identical must be "yes" in both -- the final placement (and
#      feature) checksums agree across PUFFER_THREADS 1/2/8, with
#      PUFFER_SIMD off, with the legacy scalar GP kernels, and across the
#      padding extractor modes (fast-incremental, legacy oracle,
#      non-incremental), all within this run (machine-independent).
#   2. Every checksum_* field must equal the committed reference, so a
#      placement-changing regression cannot land silently even if it
#      changes all configurations consistently. The reference is tied to
#      the CI toolchain (x86-64, gcc/glibc): libm differences move the
#      bits legitimately. After an intentional numeric change, or a
#      toolchain bump, regenerate with:
#
#        PUFFER_SCALE=512 PUFFER_THREADS=8 ./build/bench/bench_parallel_hotpaths
#        PUFFER_SCALE=512 PUFFER_THREADS=8 ./build/bench/bench_padding_features
#        { echo "== parallel_hotpaths =="
#          grep -E '"(checksum_|bit_identical)' \
#              bench_results/BENCH_parallel_hotpaths.json
#          echo "== padding_features =="
#          grep -E '"(checksum_|bit_identical)' \
#              bench_results/BENCH_padding_features.json
#        } > bench_results/REFERENCE_perf_smoke_checksums.txt
#
# Timings in the JSON are informational at smoke scale (CI machines are
# noisy); the full-scale numbers live in the committed BENCH_*.json.
#
# Usage: scripts/perf_smoke.sh  [BUILD_DIR=build] [PUFFER_SCALE=512]
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
SCALE="${PUFFER_SCALE:-512}"
REF="bench_results/REFERENCE_perf_smoke_checksums.txt"
BENCHES=(parallel_hotpaths padding_features)

for name in "${BENCHES[@]}"; do
  if [ ! -x "$BUILD_DIR/bench/bench_$name" ]; then
    echo "missing $BUILD_DIR/bench/bench_$name -- build the repo first" >&2
    exit 2
  fi
done
if [ ! -f "$REF" ]; then
  echo "missing reference $REF -- see the regeneration command above" >&2
  exit 2
fi

# The benches overwrite the committed full-scale JSONs; keep copies so
# the smoke run leaves the checkout clean.
SAVED_DIR="$(mktemp -d)"
for name in "${BENCHES[@]}"; do
  OUT="bench_results/BENCH_$name.json"
  [ -f "$OUT" ] && cp "$OUT" "$SAVED_DIR/"
done
restore() {
  for name in "${BENCHES[@]}"; do
    [ -f "$SAVED_DIR/BENCH_$name.json" ] &&
      mv "$SAVED_DIR/BENCH_$name.json" "bench_results/BENCH_$name.json"
  done
  rmdir "$SAVED_DIR" 2>/dev/null || true
}

GOT="$(mktemp)"
for name in "${BENCHES[@]}"; do
  echo "== bench_$name (PUFFER_SCALE=$SCALE, PUFFER_THREADS=8) =="
  PUFFER_SCALE="$SCALE" PUFFER_THREADS=8 "$BUILD_DIR/bench/bench_$name"
  echo "== $name ==" >> "$GOT"
  grep -E '"(checksum_|bit_identical)' "bench_results/BENCH_$name.json" \
    >> "$GOT"
done

mkdir -p bench_results
cp "$GOT" bench_results/perf_smoke_checksums.txt  # CI artifact
restore

if [ "$(grep -c '"bit_identical": "yes"' "$GOT")" -ne "${#BENCHES[@]}" ]; then
  echo "FAIL: a run is not bit-identical across threads/SIMD/extractor paths:"
  cat "$GOT"
  exit 1
fi
if ! diff -u "$REF" "$GOT"; then
  echo "FAIL: checksum_* fields differ from the committed reference $REF."
  echo "If the numeric change is intentional, regenerate the reference"
  echo "(command in the header of this script) and commit it."
  exit 1
fi
echo "PASS: bit-identical runs, checksums match the committed reference"
