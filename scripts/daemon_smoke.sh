#!/usr/bin/env bash
# End-to-end smoke test for the pufferd serving path.
#
# Boots a real pufferd on a Unix socket, submits a synthetic design with
# puffer_client while a second client attaches mid-run, then SIGTERMs
# the daemon and asserts:
#
#   1. Bit-identity: the `checksum 0x...` line printed by the daemon run
#      (`puffer_client run`), by a fetch of the same session, and by two
#      in-process runs (`puffer_client direct`, at PUFFER_THREADS=1 and
#      =8) are all identical. This is the serving-path extension of the
#      determinism contract: the wire (design codec + PUFM frames) and
#      the session scheduler must not move a single bit.
#   2. The mid-run subscriber sees a snapshot and reaches the same done
#      state + checksum (telemetry stream consistency).
#   3. Admission control is observable: a submit past max_queued gets an
#      explicit "rejected (queue-full)" reply, not a hang.
#   4. SIGTERM drains gracefully: the daemon finishes in-flight work,
#      exits 0, and a restart recovers the finished session from the
#      spool (fetch after restart returns the same checksum).
#
# Usage: scripts/daemon_smoke.sh  [BUILD_DIR=build]
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
PUFFERD="$BUILD_DIR/tools/pufferd"
CLIENT="$BUILD_DIR/tools/puffer_client"
JOB=(--bench OR1200 --scale 400 --seed 7)

for bin in "$PUFFERD" "$CLIENT"; do
  if [ ! -x "$bin" ]; then
    echo "missing $bin -- build the repo first" >&2
    exit 2
  fi
done

WORK="$(mktemp -d)"
SOCK="$WORK/pufferd.sock"
SPOOL="$WORK/spool"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

checksum_of() {  # extracts the `checksum 0x...` line from a transcript
  grep -Eo 'checksum 0x[0-9a-f]{16}' "$1" | head -n1
}

start_daemon() {
  "$PUFFERD" --listen "$SOCK" --spool "$SPOOL" --max-running 1 \
             --max-queued 1 >"$WORK/pufferd.log" 2>&1 &
  DAEMON_PID=$!
}

echo "== boot pufferd on $SOCK =="
start_daemon

echo "== daemon run (submit + subscribe + fetch) =="
"$CLIENT" "$SOCK" run "${JOB[@]}" | tee "$WORK/run.txt"
grep -q '^state done' "$WORK/run.txt"
SID="$(grep -Eo 'session [0-9]+' "$WORK/run.txt" | head -n1 | cut -d' ' -f2)"

echo "== mid-run subscriber on a second session =="
# Session 2 streams while a second client attaches to it mid-run; the
# subscriber must observe a snapshot and ride the run to done.
"$CLIENT" "$SOCK" submit "${JOB[@]}" --name bg-job > "$WORK/submit2.txt"
SID2="$(grep -Eo 'session [0-9]+' "$WORK/submit2.txt" | head -n1 | cut -d' ' -f2)"
"$CLIENT" "$SOCK" subscribe "$SID2" | tee "$WORK/sub2.txt"
grep -q '^state done' "$WORK/sub2.txt"

echo "== admission backpressure is explicit =="
# Three rapid submits against max_running=1/max_queued=1: at least one
# must come back "rejected (queue-full)" on stderr with exit 1.
REJECTED=0
for i in 1 2 3; do
  if ! "$CLIENT" "$SOCK" submit "${JOB[@]}" --name "burst-$i" \
      2>"$WORK/burst-$i.err" >/dev/null; then
    grep -q 'rejected (queue-full)' "$WORK/burst-$i.err" && REJECTED=1
  fi
done
if [ "$REJECTED" -ne 1 ]; then
  echo "FAIL: no explicit queue-full rejection in a 3-submit burst" >&2
  exit 1
fi

echo "== graceful drain on SIGTERM =="
kill -TERM "$DAEMON_PID"
RC=0
wait "$DAEMON_PID" || RC=$?
DAEMON_PID=""
if [ "$RC" -ne 0 ]; then
  echo "FAIL: pufferd exited $RC on SIGTERM (expected graceful drain)" >&2
  cat "$WORK/pufferd.log" >&2
  exit 1
fi

echo "== restart: session recovery from the spool =="
start_daemon
"$CLIENT" "$SOCK" fetch "$SID" | tee "$WORK/fetch.txt"
kill -TERM "$DAEMON_PID"; wait "$DAEMON_PID"; DAEMON_PID=""

echo "== direct in-process runs (threads 1 and 8) =="
PUFFER_THREADS=1 "$CLIENT" direct "${JOB[@]}" | tee "$WORK/direct1.txt"
PUFFER_THREADS=8 "$CLIENT" direct "${JOB[@]}" | tee "$WORK/direct8.txt"

RUN_SUM="$(checksum_of "$WORK/run.txt")"
SUB_SUM="$(checksum_of "$WORK/sub2.txt")"
FETCH_SUM="$(checksum_of "$WORK/fetch.txt")"
D1_SUM="$(checksum_of "$WORK/direct1.txt")"
D8_SUM="$(checksum_of "$WORK/direct8.txt")"
echo "daemon=$RUN_SUM subscriber=$SUB_SUM fetch=$FETCH_SUM" \
     "direct1=$D1_SUM direct8=$D8_SUM"
if [ -z "$RUN_SUM" ] || [ "$RUN_SUM" != "$D1_SUM" ] \
    || [ "$RUN_SUM" != "$D8_SUM" ] || [ "$RUN_SUM" != "$FETCH_SUM" ] \
    || [ "$RUN_SUM" != "$SUB_SUM" ]; then
  echo "FAIL: daemon / fetch / subscriber / direct checksums disagree" >&2
  exit 1
fi
echo "PASS: graceful drain + bit-identical daemon, recovery and direct runs"
