// Strategy-exploration example: tune PUFFER's strategy parameters with
// the Bayesian (TPE/SMBO) explorer on a small congested design, then
// apply the found strategy to a larger one (the paper's workflow in
// SS III-C: explore on a small design with a routability problem, deploy
// on the big benchmarks).
//
//   ./strategy_exploration [evals_per_group]
//
// Keep the budget small for a demo; every evaluation is a full placement
// plus global routing.
#include <cstdio>
#include <cstdlib>

#include "core/strategy_params.h"

int main(int argc, char** argv) {
  using namespace puffer;
  const int budget = argc > 1 ? std::atoi(argv[1]) : 12;

  // Small tuning design with a routability problem.
  SyntheticSpec tune;
  tune.name = "tune_small";
  tune.num_cells = 1500;
  tune.num_nets = 2300;
  tune.num_macros = 10;
  tune.target_utilization = 0.84;
  tune.cluster_net_ratio = 0.8;
  tune.v_capacity_factor = 0.75;

  ExperimentConfig base;
  base.puffer.gp.max_iters = 500;

  std::printf("exploring %zu strategy parameters in %zu groups, ~%d evals/group\n",
              puffer_param_specs().size(), puffer_param_groups().size(), budget);

  ExploreConfig cfg;
  cfg.time_limit = budget;
  cfg.early_stop = std::max(4, budget / 2);
  cfg.outer_rounds = 1;
  cfg.seed = 99;

  int evals = 0;
  StrategyExplorer explorer(
      puffer_param_specs(), puffer_param_groups(),
      [&](const Assignment& a) {
        const double loss = evaluate_strategy(tune, a, base);
        std::printf("  eval %3d: HOF+VOF = %.3f%%\n", ++evals, loss);
        return loss;
      },
      cfg);
  const Assignment best_cfg = explorer.run();

  std::printf("\nexploration done after %zu evaluations; best seen %.3f%%\n",
              explorer.history().size(), explorer.best().loss);
  const auto specs = puffer_param_specs();
  std::printf("final strategy (median of explored ranges):\n");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::printf("  %-18s = %.4g   (range [%.4g, %.4g])\n", specs[i].name.c_str(),
                best_cfg[i], explorer.final_ranges()[i].lo,
                explorer.final_ranges()[i].hi);
  }

  // Deploy on a larger unseen design, against the hand-tuned default.
  SyntheticSpec deploy = tune;
  deploy.name = "deploy_large";
  deploy.num_cells = 6000;
  deploy.num_nets = 9000;
  deploy.seed = 1234;

  std::printf("\ndeploying on %s (%d cells):\n", deploy.name.c_str(),
              deploy.num_cells);
  const ExperimentResult with_default =
      run_benchmark(deploy, PlacerKind::kPuffer, base);
  ExperimentConfig tuned = base;
  tuned.puffer = apply_assignment(base.puffer, best_cfg);
  const ExperimentResult with_tuned =
      run_benchmark(deploy, PlacerKind::kPuffer, tuned);
  std::printf("  default strategy: HOF %.2f%%  VOF %.2f%%  WL %.4g\n",
              with_default.hof_pct(), with_default.vof_pct(),
              with_default.routed_wl());
  std::printf("  explored strategy: HOF %.2f%%  VOF %.2f%%  WL %.4g\n",
              with_tuned.hof_pct(), with_tuned.vof_pct(), with_tuned.routed_wl());
  return 0;
}
