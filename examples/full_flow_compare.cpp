// Full-flow comparison example: run all three placers (commercial proxy,
// RePlAce-style baseline, PUFFER) on the same design, print a Table II
// style row for each, and save the placements as Bookshelf .pl files plus
// the whole design as a Bookshelf bundle.
//
//   ./full_flow_compare [benchmark_name] [scale_divisor]
//
// benchmark_name is one of the Table I suite names (default OR1200).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "core/experiment.h"
#include "io/bookshelf.h"
#include "viz/svg.h"

int main(int argc, char** argv) {
  using namespace puffer;
  const std::string name = argc > 1 ? argv[1] : "OR1200";
  const int scale = argc > 2 ? std::atoi(argv[2]) : 64;

  const SyntheticSpec spec = table1_spec(name, scale);
  std::printf("benchmark %s at scale 1/%d (%d cells)\n", name.c_str(), scale,
              spec.num_cells);

  // Export the netlist once so the runs can be reproduced externally.
  {
    Design d = generate_synthetic(spec);
    write_bookshelf(d, name);
    std::printf("design exported as %s.aux/.nodes/.nets/.pl/.scl/.route\n",
                name.c_str());
  }

  ExperimentConfig config;
  TextTable table(
      {"Placer", "HOF(%)", "VOF(%)", "routed WL", "HPWL", "RT(s)", "legal"});
  for (PlacerKind kind : {PlacerKind::kCommercialProxy, PlacerKind::kReplaceRc,
                          PlacerKind::kPuffer}) {
    Design d = generate_synthetic(spec);
    const ExperimentResult r = run_experiment(d, kind, config);
    table.add_row({placer_name(kind), TextTable::fmt(r.hof_pct(), 2),
                   TextTable::fmt(r.vof_pct(), 2),
                   TextTable::fmt(r.routed_wl(), 0),
                   TextTable::fmt(r.flow.hpwl_legal, 0),
                   TextTable::fmt(r.runtime_s(), 1),
                   r.flow.legality.legal ? "yes" : "NO"});
    const std::string pl = name + "." + placer_name(kind) + ".pl";
    write_pl(d, pl);
    // Rendered placement with the routed congestion overlay.
    const std::string svg = name + "." + placer_name(kind) + ".svg";
    write_placement_svg(d, r.route.maps.grid, r.route.maps.cg_map(), svg);
    std::printf("placement saved: %s (+ %s)\n", pl.c_str(), svg.c_str());
  }
  std::printf("\n%s", table.to_string().c_str());
  return 0;
}
