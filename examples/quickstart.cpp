// Quickstart: generate a small congested design, run the PUFFER flow, and
// evaluate routability with the neutral global router.
//
//   ./quickstart [num_cells] [utilization]
//
// This exercises the whole public API in ~40 lines: synthetic benchmark
// generation, the placement flow with multi-feature cell padding, the
// evaluation router with HOF/VOF reporting, and an SVG rendering of the
// final placement with its congestion overlay.
#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "viz/svg.h"

int main(int argc, char** argv) {
  using namespace puffer;

  SyntheticSpec spec;
  spec.name = "quickstart";
  spec.num_cells = argc > 1 ? std::atoi(argv[1]) : 4000;
  spec.num_nets = spec.num_cells * 3 / 2;
  spec.num_macros = 12;
  spec.target_utilization = argc > 2 ? std::atof(argv[2]) : 0.80;
  spec.cluster_net_ratio = 0.78;
  Design design = generate_synthetic(spec);
  std::printf("design: %zu cells, %zu nets, %zu macros, die %.0f x %.0f\n",
              design.num_movable(), design.nets.size(), design.num_macros(),
              design.die.width(), design.die.height());

  ExperimentConfig config;
  const ExperimentResult result =
      run_experiment(design, PlacerKind::kPuffer, config);

  std::printf("\n=== PUFFER result ===\n");
  std::printf("padding rounds : %d\n", result.flow.padding_rounds);
  std::printf("HPWL (gp)      : %.4g\n", result.flow.hpwl_gp);
  std::printf("HPWL (legal)   : %.4g\n", result.flow.hpwl_legal);
  std::printf("legality       : %s\n", result.flow.legality.summary().c_str());
  std::printf("HOF            : %.2f %%\n", result.hof_pct());
  std::printf("VOF            : %.2f %%\n", result.vof_pct());
  std::printf("routed WL      : %.4g\n", result.routed_wl());
  std::printf("runtime        : %.1f s\n", result.runtime_s());
  for (const auto& [stage, secs] : result.flow.stages.all()) {
    std::printf("  stage %-16s %.2f s\n", stage.c_str(), secs);
  }

  write_placement_svg(design, result.route.maps.grid,
                      result.route.maps.cg_map(), "quickstart.svg");
  std::printf("\nplacement rendered to quickstart.svg\n");
  return 0;
}
