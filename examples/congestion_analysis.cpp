// Congestion-analysis example: estimate congestion with PUFFER's fast
// detour-imitating estimator, route the same placement with the
// evaluation global router, and compare the two maps.
//
//   ./congestion_analysis [bookshelf.aux]
//
// Without an argument a synthetic design is generated; with one, a
// Bookshelf design (e.g. an ISPD benchmark) is loaded. Outputs ASCII maps
// and PPM heatmaps (estimated vs routed) plus their correlation --
// exactly how we validated the estimator (see bench_ablation_estimation).
#include <cstdio>
#include <string>

#include "congestion/estimator.h"
#include "core/flow.h"
#include "io/bookshelf.h"
#include "io/synthetic.h"

int main(int argc, char** argv) {
  using namespace puffer;

  Design design;
  if (argc > 1) {
    std::printf("loading Bookshelf design %s ...\n", argv[1]);
    design = read_bookshelf(argv[1]);
  } else {
    SyntheticSpec spec;
    spec.name = "congestion_demo";
    spec.num_cells = 6000;
    spec.num_nets = 9000;
    spec.num_macros = 16;
    spec.target_utilization = 0.82;
    spec.cluster_net_ratio = 0.8;
    spec.v_capacity_factor = 0.75;  // V-starved stack: visible hot spots
    design = generate_synthetic(spec);
  }
  std::printf("design %s: %zu cells, %zu nets\n", design.name.c_str(),
              design.num_movable(), design.nets.size());

  // Spread the design first (a clustered input makes any congestion map
  // meaningless).
  initial_place(design);
  GpConfig gp;
  EPlaceEngine engine(design, gp);
  engine.run_to_overflow(0.12);
  std::printf("wirelength-driven GP done: overflow %.3f, HPWL %.4g\n",
              engine.density_overflow(), design.total_hpwl());

  // Fast estimate.
  CongestionConfig cc;
  CongestionEstimator estimator(design, cc);
  const CongestionResult est = estimator.estimate();
  const OverflowStats est_of = compute_overflow(est.maps);
  std::printf("\nestimated:  HOF %.2f%%  VOF %.2f%%  (%d segments expanded)\n",
              est_of.hof_pct, est_of.vof_pct, est.expanded_segments);

  // Ground truth from the router.
  const RouteResult routed = evaluate_routability(design);
  std::printf("routed:     HOF %.2f%%  VOF %.2f%%  WL %.4g  (%d reroutes)\n",
              routed.overflow.hof_pct, routed.overflow.vof_pct,
              routed.wirelength, routed.rerouted);

  const Map2D<double> est_cg = est.maps.cg_map();
  const Map2D<double> routed_cg = routed.maps.cg_map();
  std::printf("map correlation (estimated vs routed): %.3f\n\n",
              map_correlation(est_cg, routed_cg));

  std::printf("estimated congestion ('.'=slack, digits/#=overflow):\n%s\n",
              map_to_ascii(est_cg).c_str());
  std::printf("routed congestion:\n%s\n", map_to_ascii(routed_cg).c_str());

  write_map_ppm(est_cg, "congestion_estimated.ppm");
  write_map_ppm(routed_cg, "congestion_routed.ppm");
  std::printf("heatmaps written: congestion_estimated.ppm, congestion_routed.ppm\n");
  return 0;
}
